// Package determinismtest seeds one violation of each determinism class the
// analyzer must catch, plus the allowed patterns it must stay quiet on.
package determinismtest

import (
	"math/rand"
	"time"
)

type queue struct{}

func (q *queue) Put(v any) {}

func clocks() time.Duration {
	t0 := time.Now()             // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(t0)        // want `time\.Since reads the wall clock`
}

func allowed() time.Duration {
	//lint:wallclock fixture real-mode env: wall time is this clock
	return time.Since(time.Time{})
}

func unjustified() {
	//lint:wallclock
	time.Sleep(1) // want `marker needs a justification`
}

func prng() int {
	r := rand.New(rand.NewSource(7)) // explicitly seeded: deterministic, allowed
	_ = r.Intn(4)
	return rand.Intn(10) // want `math/rand\.Intn draws from the global PRNG`
}

func fanout(q *queue, m map[string]int) {
	for k := range m {
		q.Put(k) // want `Put inside a range over a map`
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collecting keys to sort is the approved shape
	}
	_ = keys
}

type mailbox struct{}

func (mb *mailbox) Post(dst int, v any) {}

// mergeFanout covers the S22 shard-merge extension of the map-range rule:
// cross-shard posts carry (time, node, seq) merge keys assigned in issue
// order, so issuing them in map order diverges replays.
func mergeFanout(mb *mailbox, m map[int]int) {
	for dst := range m {
		mb.Post(dst, 1) // want `Post inside a range over a map`
	}
}

// selects covers the S22 multi-case select rule: with several ready cases the
// runtime chooses uniformly at random.
func selects(a, b chan int) int {
	select { // want `select with 2 cases resolves ready cases by runtime coin flip`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// singleCaseSelect is the allowed shape: one case is deterministic.
func singleCaseSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// Package determinismtest seeds one violation of each determinism class the
// analyzer must catch, plus the allowed patterns it must stay quiet on.
package determinismtest

import (
	"math/rand"
	"time"
)

type queue struct{}

func (q *queue) Put(v any) {}

func clocks() time.Duration {
	t0 := time.Now()             // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(t0)        // want `time\.Since reads the wall clock`
}

func allowed() time.Duration {
	//lint:wallclock fixture real-mode env: wall time is this clock
	return time.Since(time.Time{})
}

func unjustified() {
	//lint:wallclock
	time.Sleep(1) // want `marker needs a justification`
}

func prng() int {
	r := rand.New(rand.NewSource(7)) // explicitly seeded: deterministic, allowed
	_ = r.Intn(4)
	return rand.Intn(10) // want `math/rand\.Intn draws from the global PRNG`
}

func fanout(q *queue, m map[string]int) {
	for k := range m {
		q.Put(k) // want `Put inside a range over a map`
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collecting keys to sort is the approved shape
	}
	_ = keys
}

// Package statusexhaustivetest seeds a non-exhaustive status switch the
// statusexhaustive analyzer must catch, plus the complete and unrelated
// switches it must stay quiet on.
package statusexhaustivetest

const (
	statusSuccess = iota
	statusError
	statusBusy
)

// Not part of the status-code group: not an integer constant.
const statusLine = "----"

func good(s int) int {
	switch s {
	case statusSuccess:
		return 0
	case statusError:
		return 1
	case statusBusy:
		return 2
	}
	return -1
}

func bad(s int) int {
	switch s { // want `missing cases for statusBusy, statusError`
	case statusSuccess:
		return 0
	default:
		return -1
	}
}

func unrelated(kind int) {
	switch kind {
	case 1, 2:
	default:
	}
	_ = statusLine
}

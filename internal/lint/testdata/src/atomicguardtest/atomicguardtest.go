// Package atomicguardtest seeds mixed plain/atomic accesses and atomic-state
// copies the atomicguard analyzer must catch, plus the marker and
// composite-literal shapes it must stay quiet on.
package atomicguardtest

import "sync/atomic"

type counter struct {
	hits  int64
	drops int64 // never atomic: plain access stays legal
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
	c.drops++
}

func (c *counter) snapshot() int64 {
	return c.hits // want `plain access of atomicguardtest\.counter\.hits`
}

func (c *counter) reset() {
	c.hits = 0 // want `plain access of atomicguardtest\.counter\.hits`
	c.drops = 0
}

func newCounter() *counter {
	return &counter{hits: 0} // composite literal: unpublished, no marker needed
}

func blessedInit() *counter {
	c := new(counter)
	//lint:atomicinit c is not published until the return below
	c.hits = 42
	return c
}

func bareMarker(c *counter) int64 {
	//lint:atomicinit
	return c.hits // want `marker needs a justification`
}

var seq int64

func nextSeq() int64 {
	return atomic.AddInt64(&seq, 1)
}

func peekSeq() int64 {
	return seq // want `plain access of atomicguardtest\.seq`
}

// gauge carries typed atomic state: copying it detaches the copy.
type gauge struct {
	level atomic.Int64
}

type board struct {
	gauges [4]gauge
}

func observe(g *gauge) { g.level.Add(1) } // pointer: fine

func copies(g gauge, b board) {
	snap := g                     // want `assignment copies gauge`
	sink(b)                       // want `call copies board`
	for _, gg := range b.gauges { // want `range copies gauge`
		observe(&gg)
	}
	observe(&snap)
}

func returned(g *gauge) gauge {
	return *g // want `return copies gauge`
}

func sink(v interface{}) {}

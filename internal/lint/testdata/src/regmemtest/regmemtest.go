// Package regmemtest seeds the registered-memory bug classes the regmem
// analyzer must catch — lost reservations, stale references after release,
// retained buffers after channel/goroutine handoff — plus the defer,
// owner-object, and interprocedural-release shapes it must accept.
package regmemtest

import (
	"errors"

	"bufpool"
	"ibverbs"
)

var errFull = errors.New("budget exhausted")
var errBad = errors.New("bad input")

func work() {}

func use(p []byte) {}

// --- MemoryBudget reservations ---

func reserveOK(b *ibverbs.MemoryBudget) {
	if b.TryReserve(64) {
		work()
		b.Release(64)
	}
}

func reserveLeak(b *ibverbs.MemoryBudget, bad bool) {
	if b.TryReserve(64) { // want `released on some paths but leaks on others`
		if bad {
			return // the early return skips the Release
		}
		b.Release(64)
	}
}

func reserveNegated(b *ibverbs.MemoryBudget, bad bool) error {
	if !b.TryReserve(64) { // want `released on some paths but leaks on others`
		return errFull
	}
	if bad {
		return errBad // leaks the reservation
	}
	b.Release(64)
	return nil
}

func reserveDiscard(b *ibverbs.MemoryBudget) {
	b.TryReserve(64) // want `result of b\.TryReserve discarded`
}

func reserveDouble(b *ibverbs.MemoryBudget) {
	if b.TryReserve(64) {
		b.Release(64)
		b.Release(64) // want `released twice`
	}
}

func reserveDeferOK(b *ibverbs.MemoryBudget, bad bool) error {
	if !b.TryReserve(64) {
		return errFull
	}
	defer b.Release(64)
	if bad {
		return errBad // fine: the defer still releases
	}
	return nil
}

type owner struct {
	budget *ibverbs.MemoryBudget
}

// reserveHandoff holds the reservation on every path: the returned owner is
// presumed to Release in its Close, like the SRQ constructor. No finding.
func reserveHandoff(b *ibverbs.MemoryBudget) *owner {
	if !b.TryReserve(64) {
		return nil
	}
	return &owner{budget: b}
}

// --- stale buffer references ---

type stream struct {
	buf *bufpool.Buffer
}

func useAfterRelease(p *bufpool.NativePool) {
	b := p.Get(64)
	p.Put(b)
	use(b.Data) // want `used after its release`
}

func sendAfterRelease(p *bufpool.NativePool, ch chan *bufpool.Buffer) {
	b := p.Get(64)
	p.Put(b)
	ch <- b // want `used after its release`
}

func storeAfterRelease(p *bufpool.NativePool, s *stream) {
	b := p.Get(64)
	p.Put(b)
	s.buf = b // want `stored after its release`
}

func releaseAfterSend(p *bufpool.NativePool, ch chan *bufpool.Buffer) {
	b := p.Get(64)
	ch <- b  // the receiver owns the buffer now
	p.Put(b) // want `two owners, one buffer`
}

func retainAfterGo(p *bufpool.NativePool, sink func(*bufpool.Buffer)) {
	b := p.Get(64)
	go sink(b)
	use(b.Data) // want `must not be retained`
}

func sendOK(p *bufpool.NativePool, ch chan *bufpool.Buffer) {
	b := p.Get(64)
	ch <- b // handoff without retention: fine
}

// --- obligations through calls ---

func releaseHelper(p *bufpool.NativePool, b *bufpool.Buffer) {
	p.Put(b)
}

func throughCallOK(p *bufpool.NativePool) {
	b := p.Get(64)
	releaseHelper(p, b) // the summary sees the release one call down
}

func throughCallStale(p *bufpool.NativePool) {
	b := p.Get(64)
	releaseHelper(p, b)
	use(b.Data) // want `used after its release`
}

func keepHelper(b *bufpool.Buffer) int {
	return len(b.Data)
}

func throughKeeper(p *bufpool.NativePool) {
	b := p.Get(64) // want `not released on any path`
	keepHelper(b)
}

func maybeHelper(p *bufpool.NativePool, b *bufpool.Buffer, flag bool) {
	if flag {
		p.Put(b)
	}
}

func throughMaybe(p *bufpool.NativePool, flag bool) {
	b := p.Get(64) // want `released on some paths but leaks on others`
	maybeHelper(p, b, flag)
}

// --- accepted shapes ---

func deferBufOK(p *bufpool.NativePool) {
	b := p.Get(64)
	defer p.Put(b)
	use(b.Data)
}

func escapeReturn(p *bufpool.NativePool) *bufpool.Buffer {
	b := p.Get(64)
	return b // the caller owns the release
}

func escapeStore(p *bufpool.NativePool, s *stream) {
	s.buf = p.Get(64) // the struct owns the release
}

func loopOK(p *bufpool.NativePool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get(64)
		use(b.Data)
		p.Put(b)
	}
}

func loopLeak(p *bufpool.NativePool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get(64) // want `overwritten before being released` `not released on any path`
		use(b.Data)
	}
}

package atomicguard_test

import (
	"strings"
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/atomicguard"
)

func TestAtomicGuard(t *testing.T) {
	analysistest.Run(t, "../testdata", atomicguard.Analyzer, "atomicguardtest")
}

// TestMerge covers the cross-package half: agshared only ever touches
// Stats.Ops atomically, agplain reads it bare. Neither package mixes on its
// own, so the per-package runs stay quiet and only Merge can see the race.
func TestMerge(t *testing.T) {
	results := analysistest.Run(t, "../testdata", atomicguard.Analyzer, "agshared", "agplain")
	var facts []*atomicguard.Facts
	for _, r := range results {
		f, ok := r.(*atomicguard.Facts)
		if !ok {
			t.Fatalf("result %T, want *atomicguard.Facts", r)
		}
		facts = append(facts, f)
	}
	problems := atomicguard.Merge(facts)
	if len(problems) != 1 {
		t.Fatalf("Merge: %d problems, want 1: %+v", len(problems), problems)
	}
	if !strings.Contains(problems[0].Message, "agshared.Stats.Ops") ||
		!strings.Contains(problems[0].Message, "which agshared accesses via sync/atomic") {
		t.Fatalf("Merge problem message = %q", problems[0].Message)
	}
}

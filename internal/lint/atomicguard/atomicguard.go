// Package atomicguard enforces the all-or-nothing contract of sync/atomic:
// a word that is accessed atomically anywhere must be accessed atomically
// everywhere.
//
// The engine's hot paths (kernel shards, SRQ accounting, rail selection)
// lean on atomics instead of locks; a single plain load of the same word —
// often in a far-away stats or debug function — is a data race the race
// detector only catches if the chaos seed happens to interleave it. The
// analyzer closes the gap statically, and interprocedurally: it keys every
// access to a struct field or package-level variable of an atomic-capable
// type (int32/int64/uint32/uint64/uintptr/unsafe.Pointer), classifies each
// as atomic (an `&x` operand of a sync/atomic call) or plain (anything
// else), and reports the plain sites of any mixed word. Mixes inside one
// package are reported directly; Facts carry each package's access sets so
// the driver can cross-check the whole module (a field updated with
// atomic.AddUint64 in internal/core and read bare in internal/faultsim is a
// finding at the faultsim site).
//
// Pre-publication initialization — plain stores before the owning object is
// visible to any other goroutine, the one blessed exception in the
// sync/atomic docs — is allowlisted per line with a justified
// `//lint:atomicinit <why>` marker; a bare marker is itself a finding.
// Composite-literal field values (T{n: 0}) are exempt without a marker:
// the literal's memory cannot be shared yet.
//
// A second rule covers the typed atomics (atomic.Int64 and friends), which
// cannot be mixed call-by-call but can be copied wholesale: copying a value
// whose type transitively contains a sync/atomic type (assignment, call
// argument, return, range value) detaches the copy from the word every
// other goroutine is updating, so the copy's loads are silently plain.
package atomicguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rpcoib/internal/lint/analysis"
)

// Analyzer is the mixed atomic/plain access check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicguard",
	Doc:  "a word accessed via sync/atomic anywhere must be accessed atomically everywhere; typed atomic state must not be copied",
	Run:  run,
}

const marker = "//lint:atomicinit"

// Facts is the per-package export: where each atomic-capable word was
// touched, split by access kind, for the driver's module-wide cross-check.
type Facts struct {
	PkgPath string
	// Atomic and Plain map a word key ("pkgpath.Type.field" or
	// "pkgpath.var") to the positions of its accesses in this package.
	Atomic map[string][]token.Pos
	Plain  map[string][]token.Pos
	// LocalMixed marks keys already reported inside this package, so Merge
	// does not repeat them.
	LocalMixed map[string]bool
}

// Problem is one cross-package finding produced by Merge.
type Problem struct {
	Pos     token.Pos
	Message string
}

// Merge cross-checks per-package facts: a word atomic in one package and
// plain in another is reported at each plain site. Within-package mixes were
// already reported by run.
func Merge(facts []*Facts) []Problem {
	atomicIn := map[string]string{} // key -> first package with atomic access
	for _, f := range facts {
		keys := make([]string, 0, len(f.Atomic))
		for k := range f.Atomic {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, ok := atomicIn[k]; !ok {
				atomicIn[k] = f.PkgPath
			}
		}
	}
	var problems []Problem
	for _, f := range facts {
		keys := make([]string, 0, len(f.Plain))
		for k := range f.Plain {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			owner, ok := atomicIn[k]
			if !ok || f.LocalMixed[k] || len(f.Atomic[k]) > 0 {
				continue // never atomic anywhere, or already reported locally
			}
			for _, pos := range f.Plain[k] {
				problems = append(problems, Problem{Pos: pos,
					Message: "plain access of " + k + ", which " + owner + " accesses via sync/atomic; mixed access is a data race — use sync/atomic here too, or mark pre-publication init with " + marker + " <why>"})
			}
		}
	}
	return problems
}

type collector struct {
	pass    *analysis.Pass
	facts   *Facts
	markers map[int]string
	// atomicOperand holds the &x operands of sync/atomic calls in the
	// current file, so the access walk can classify them.
	atomicOperand map[ast.Expr]bool
	// litKeys holds composite-literal field keys (exempt as unpublished).
	litKeys map[*ast.Ident]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &collector{
		pass: pass,
		facts: &Facts{
			PkgPath:    pass.Pkg.Path(),
			Atomic:     map[string][]token.Pos{},
			Plain:      map[string][]token.Pos{},
			LocalMixed: map[string]bool{},
		},
	}
	for _, f := range pass.Files {
		c.markers = markerLines(pass, f)
		c.atomicOperand = map[ast.Expr]bool{}
		c.litKeys = map[*ast.Ident]bool{}
		ast.Inspect(f, c.classify)
		ast.Inspect(f, c.collect)
		ast.Inspect(f, c.copies)
	}

	// Report the within-package mixes at their plain sites.
	keys := make([]string, 0, len(c.facts.Plain))
	for k := range c.facts.Plain {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		atomics := c.facts.Atomic[k]
		if len(atomics) == 0 {
			continue
		}
		c.facts.LocalMixed[k] = true
		where := pass.Fset.Position(atomics[0])
		for _, pos := range c.facts.Plain[k] {
			pass.Reportf(pos, "plain access of %s, which is accessed via sync/atomic at %s:%d; mixed access is a data race — use sync/atomic here too, or mark pre-publication init with %s <why>",
				k, where.Filename, where.Line, marker)
		}
	}
	return c.facts, nil
}

// classify records the &x operands of sync/atomic calls and the field keys
// of composite literals, so collect can tell atomic accesses and unpublished
// initialization from plain access.
func (c *collector) classify(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if !c.isAtomicCall(n) {
			return true
		}
		for _, arg := range n.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				c.atomicOperand[ast.Unparen(u.X)] = true
			}
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					c.litKeys[id] = true
				}
			}
		}
	}
	return true
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (the old-style AddInt64/LoadUint32/... API).
func (c *collector) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// collect records every access to an atomic-capable word.
func (c *collector) collect(n ast.Node) bool {
	var id *ast.Ident
	switch n := n.(type) {
	case *ast.SelectorExpr:
		id = n.Sel
	case *ast.Ident:
		id = n
	default:
		return true
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || c.litKeys[id] {
		return true
	}
	key := c.wordKey(n.(ast.Expr), v)
	if key == "" {
		return true
	}
	if c.atomicOperand[ast.Unparen(n.(ast.Expr))] {
		c.facts.Atomic[key] = append(c.facts.Atomic[key], id.Pos())
		return false
	}
	line := c.pass.Fset.Position(id.Pos()).Line
	if just, ok := markerAt(c.markers, line); ok {
		if strings.TrimSpace(just) == "" {
			c.pass.Reportf(id.Pos(), "%s marker needs a justification: why is this store provably pre-publication?", marker)
		}
		return true
	}
	c.facts.Plain[key] = append(c.facts.Plain[key], id.Pos())
	return true
}

// wordKey names the word e (resolving to variable v) if it is shareable and
// atomic-capable: a struct field reached by selection, or a package-level
// variable. Locals can't race across packages and are skipped.
func (c *collector) wordKey(e ast.Expr, v *types.Var) string {
	if !atomicCapable(v.Type()) || v.Pkg() == nil {
		return ""
	}
	if v.IsField() {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		t := c.pass.TypesInfo.TypeOf(sel.X)
		if t == nil {
			return ""
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
	}
	// Package-level variable?
	if v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// atomicCapable reports whether t is a type the old-style sync/atomic API
// operates on.
func atomicCapable(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64,
			types.Uintptr, types.UnsafePointer:
			return true
		}
	}
	return false
}

// copies flags expressions that copy a value whose type transitively
// contains sync/atomic state.
func (c *collector) copies(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			return true
		}
		for _, r := range n.Rhs {
			c.checkCopy(r, "assignment copies")
		}
	case *ast.CallExpr:
		if c.isAtomicCall(n) {
			return true
		}
		for _, a := range n.Args {
			c.checkCopy(a, "call copies")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkCopy(r, "return copies")
		}
	case *ast.RangeStmt:
		if n.Value != nil {
			if t := c.pass.TypesInfo.TypeOf(n.Value); t != nil && containsAtomic(t, nil) {
				c.pass.Reportf(n.Value.Pos(), "range copies %s, which contains sync/atomic state; the copy's loads and stores are plain access racing the original — take a pointer", types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
			}
		}
	}
	return true
}

// checkCopy reports e when it reads (copies) an existing value containing
// atomic state: an identifier, selection, index, or dereference. Fresh
// values (composite literals, calls) are not copies of shared state.
func (c *collector) checkCopy(e ast.Expr, what string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil || !containsAtomic(t, nil) {
		return
	}
	c.pass.Reportf(e.Pos(), "%s %s, which contains sync/atomic state; the copy's loads and stores are plain access racing the original — pass a pointer", what, types.TypeString(t, types.RelativeTo(c.pass.Pkg)))
}

// containsAtomic reports whether t (passed by value) carries a sync/atomic
// typed word: one of the typed atomics itself, or a struct/array holding one.
func containsAtomic(t types.Type, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic(u.Elem(), seen)
	}
	return false
}

func markerAt(markers map[int]string, line int) (string, bool) {
	if j, ok := markers[line]; ok {
		return j, true
	}
	j, ok := markers[line-1]
	return j, ok
}

func markerLines(pass *analysis.Pass, f *ast.File) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				m[pass.Fset.Position(c.Pos()).Line] = strings.TrimPrefix(c.Text, marker)
			}
		}
	}
	return m
}

package statusexhaustive_test

import (
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/statusexhaustive"
)

func TestStatusExhaustive(t *testing.T) {
	analysistest.Run(t, "../testdata", statusexhaustive.Analyzer, "statusexhaustivetest")
}

// Package statusexhaustive checks that switches over wire status codes
// cover every status constant.
//
// The RPC wire format resolves each response with a status byte
// (statusSuccess/statusError/statusBusy/statusExpired in internal/core).
// When a new code is added — statusBusy and statusExpired both arrived in
// S19 — every switch that dispatches on the status must be revisited: a
// forgotten case silently lumps the new code into the default branch, which
// for a retriable condition like statusBusy would turn back-pressure into a
// hard failure. The analyzer collects the package-level integer constants
// named status* (statusSuccess, statusExpired, ...) and requires any switch
// mentioning one of them in a case to list all of them explicitly; a
// default clause may additionally catch unknown bytes from newer peers, but
// does not substitute for the named codes.
package statusexhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"rpcoib/internal/lint/analysis"
)

// Analyzer is the status-switch exhaustiveness check.
var Analyzer = &analysis.Analyzer{
	Name: "statusexhaustive",
	Doc:  "switches over wire status codes must cover every status* constant",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	group := map[types.Object]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "status") || len(name) == len("status") {
			continue
		}
		r := name[len("status")]
		if r < 'A' || r > 'Z' {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		group[c] = true
	}
	if len(group) == 0 {
		return nil, nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			present := map[types.Object]bool{}
			uses := false
			for _, cl := range sw.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil && group[obj] {
							present[obj] = true
							uses = true
						}
					}
				}
			}
			if !uses {
				return true
			}
			var missing []string
			for obj := range group {
				if !present[obj] {
					missing = append(missing, obj.Name())
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(), "switch over status codes is missing cases for %s: every status* constant must be handled explicitly (a default may catch unknown bytes but does not cover named codes)", strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil, nil
}

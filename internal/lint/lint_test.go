package lint_test

import (
	"testing"

	"rpcoib/internal/lint"
)

// TestSelfLint runs the full suite over the module itself — the same
// invocation as `make lint` / `go run ./cmd/rpcoiblint ./...` — and demands
// zero findings. Every real violation must either be fixed or carry a
// justified //lint:wallclock marker, and metric_names.golden must match the
// statically enumerable family set both ways.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint shells out to go list -export over the whole module")
	}
	findings, err := lint.Run([]string{"rpcoib/..."}, lint.Options{})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

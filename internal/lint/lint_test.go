package lint_test

import (
	"testing"

	"rpcoib/internal/lint"
)

// suite is the full analyzer roster TestSelfLint demands: the five AST
// checks plus the three SSA-lite interprocedural analyzers (S25). A missing
// name here means someone unplugged an invariant from the gate.
var suite = []string{
	"determinism", "poolpair", "metricnames", "lockcall",
	"statusexhaustive", "atomicguard", "regmem", "goroutineleak",
}

// TestSelfLint runs the full suite over the module itself — the same
// invocation as `make lint` / `go run ./cmd/rpcoiblint ./...` — and demands
// zero findings under all eight analyzers. Every real violation must either
// be fixed or carry a justified marker (//lint:wallclock, //lint:atomicinit,
// //lint:goroutine), and metric_names.golden must match the statically
// enumerable family set both ways.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint shells out to go list -export over the whole module")
	}
	registered := map[string]bool{}
	for _, a := range lint.Analyzers {
		registered[a.Name] = true
	}
	for _, name := range suite {
		if !registered[name] {
			t.Errorf("analyzer %s is missing from lint.Analyzers", name)
		}
	}
	if len(lint.Analyzers) != len(suite) {
		t.Errorf("lint.Analyzers has %d analyzers, want %d", len(lint.Analyzers), len(suite))
	}
	findings, err := lint.Run([]string{"rpcoib/..."}, lint.Options{})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

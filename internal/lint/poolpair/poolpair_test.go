package poolpair_test

import (
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/poolpair"
)

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, "../testdata", poolpair.Analyzer, "poolpairtest")
}

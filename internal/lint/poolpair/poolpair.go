// Package poolpair checks that registered buffers acquired from the bufpool
// package are released exactly once on every intra-function path.
//
// The paper's buffer pool (Design idea 2/3) hands out pre-registered native
// buffers; a Get/Acquire without a matching Put/Release leaks registered
// memory (the ledger invariant Gets==Puts that faultsim.Report asserts at
// runtime), and a double Put would hand one buffer to two callers. This
// analyzer moves the common cases of both from "found by seed 13" to
// "rejected before merge": it tracks each local variable bound to the result
// of a Get/Acquire/Grow call on a bufpool type and walks the function's
// statement tree path-sensitively:
//
//   - at every return (and fall-off-the-end), a tracked buffer that is still
//     held — or held on some branch — is reported, pointing at both the exit
//     and the acquisition;
//   - a second Put/Release of an already-released buffer is reported;
//   - an acquisition whose result is discarded outright is reported.
//
// The check is deliberately conservative about escapes: a buffer that is
// returned, stored into a struct, map, slice, or channel, captured whole by
// a closure, or passed to any non-pool call transfers its release
// obligation elsewhere and stops being tracked. Selector uses (b.Data,
// b.Cap()) and nil comparisons do not escape. Grow(b, n) releases b and the
// assigned result starts a new obligation, mirroring ShadowPool.Grow's
// put-and-reget contract.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rpcoib/internal/lint/analysis"
)

// Analyzer is the pool Get/Put pairing check.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "every bufpool acquisition must reach exactly one Put/Release on all intra-function paths",
	Run:  run,
}

// status is the tracking state of one acquired buffer variable.
type status uint8

const (
	held      status = iota // acquired, release still owed
	maybeHeld               // released on some branches only
	released                // released on all branches so far
	escaped                 // obligation transferred; no longer tracked
)

// track is one acquisition obligation.
type track struct {
	v          *types.Var
	acquiredAt token.Pos
	st         status
}

// state maps buffer variables to their obligation, copied at branch points.
type state map[*types.Var]*track

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		cv := *v
		c[k] = &cv
	}
	return c
}

type checker struct {
	pass *analysis.Pass
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
				}
				return false // nested func literals are walked by checkFunc
			}
			return true
		})
	}
	return nil, nil
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := state{}
	terminated := c.walkStmt(body, st)
	if !terminated {
		c.checkExit(st, body.End())
	}
	// Func literals declared inside get their own independent walk (their
	// captured-variable effects were already treated as escapes/releases at
	// the capture site).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(lit.Body)
			return false
		}
		return true
	})
}

// checkExit reports every obligation still (maybe) held when a path leaves
// the function at pos.
func (c *checker) checkExit(s state, pos token.Pos) {
	for _, t := range s {
		switch t.st {
		case held:
			c.pass.Reportf(pos, "pool buffer %q (acquired at %s) is not released on this path", t.v.Name(), c.pos(t.acquiredAt))
		case maybeHeld:
			c.pass.Reportf(pos, "pool buffer %q (acquired at %s) is released on some paths but not this one", t.v.Name(), c.pos(t.acquiredAt))
		}
	}
}

func (c *checker) pos(p token.Pos) string {
	pos := c.pass.Fset.Position(p)
	return pos.Filename[strings.LastIndexByte(pos.Filename, '/')+1:] + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// walkStmt interprets one statement, mutating s; it reports whether the
// statement always terminates the enclosing path (return / branch).
func (c *checker) walkStmt(stmt ast.Stmt, s state) bool {
	switch n := stmt.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, st := range n.List {
			if c.walkStmt(st, s) {
				return true
			}
		}
		return false

	case *ast.AssignStmt:
		c.walkAssign(n, s)
		return false

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							c.bindValue(name, vs.Values[i], s)
						}
					}
				}
			}
		}
		return false

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if c.isAcquire(call) != "" {
				c.pass.Reportf(call.Pos(), "result of %s discarded: the acquired buffer can never be released", c.callName(call))
				c.scanExpr(call, s, false)
				return false
			}
		}
		c.scanExpr(n.X, s, false)
		return false

	case *ast.DeferStmt:
		// Releases inside a defer satisfy the obligation at every exit;
		// other captured uses are ignored (they run at exit, after the
		// obligation question is settled).
		c.applyReleases(n.Call, s)
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					c.applyReleases(call, s)
				}
				return true
			})
		}
		return false

	case *ast.GoStmt:
		// A goroutine may release asynchronously; treat releases as
		// satisfied and anything else captured as escaped.
		c.applyReleases(n.Call, s)
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					c.applyReleases(call, s)
				}
				return true
			})
		}
		c.scanExpr(n.Call, s, true)
		return false

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.scanExpr(r, s, false)
		}
		c.checkExit(s, n.Pos())
		return true

	case *ast.BranchStmt:
		// break/continue/goto: stop the linear walk of this branch without
		// an exit check (lenient: the release may happen after the loop).
		return true

	case *ast.IfStmt:
		c.walkStmt(n.Init, s)
		c.scanExpr(n.Cond, s, false)
		thenState := s.clone()
		thenTerm := c.walkStmt(n.Body, thenState)
		elseState := s.clone()
		elseTerm := false
		if n.Else != nil {
			elseTerm = c.walkStmt(n.Else, elseState)
		}
		merge(s, thenState, thenTerm, elseState, elseTerm)
		return thenTerm && elseTerm

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkBranches(n, s)

	case *ast.ForStmt:
		c.walkStmt(n.Init, s)
		c.scanExpr(n.Cond, s, false)
		bodyState := s.clone()
		c.walkStmt(n.Body, bodyState)
		c.walkStmt(n.Post, bodyState)
		c.loopMerge(s, bodyState, n.Body)
		return false

	case *ast.RangeStmt:
		c.scanExpr(n.X, s, false)
		bodyState := s.clone()
		c.walkStmt(n.Body, bodyState)
		c.loopMerge(s, bodyState, n.Body)
		return false

	case *ast.LabeledStmt:
		return c.walkStmt(n.Stmt, s)

	case *ast.SendStmt:
		c.scanExpr(n.Chan, s, false)
		c.scanExpr(n.Value, s, false)
		return false

	case *ast.IncDecStmt:
		c.scanExpr(n.X, s, false)
		return false

	default:
		return false
	}
}

// walkBranches handles switch/select: each clause runs on a cloned state.
// With a default clause (or any select, which always executes some clause)
// exactly one clause runs, so s becomes the merge of the non-terminating
// clause states; without one, the no-match path keeps s and the clause
// states merge into it. Reports whether every path through the statement
// terminates.
func (c *checker) walkBranches(stmt ast.Stmt, s state) bool {
	var body *ast.BlockStmt
	exhaustive := false
	switch n := stmt.(type) {
	case *ast.SwitchStmt:
		c.walkStmt(n.Init, s)
		c.scanExpr(n.Tag, s, false)
		body = n.Body
	case *ast.TypeSwitchStmt:
		c.walkStmt(n.Init, s)
		body = n.Body
	case *ast.SelectStmt:
		body = n.Body
		exhaustive = true
	}
	var nonTerm []state
	for _, cl := range body.List {
		cs := s.clone()
		term := false
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				exhaustive = true // default clause
			}
			for _, e := range cl.List {
				c.scanExpr(e, cs, false)
			}
			term = c.walkStmts(cl.Body, cs)
		case *ast.CommClause:
			c.walkStmt(cl.Comm, cs)
			term = c.walkStmts(cl.Body, cs)
		}
		if !term {
			nonTerm = append(nonTerm, cs)
		}
	}
	if exhaustive {
		if len(nonTerm) == 0 {
			return len(body.List) > 0
		}
		replace(s, nonTerm[0])
		for _, cs := range nonTerm[1:] {
			mergeInto(s, cs)
		}
		return false
	}
	for _, cs := range nonTerm {
		mergeInto(s, cs)
	}
	return false
}

func (c *checker) walkStmts(list []ast.Stmt, s state) bool {
	for _, st := range list {
		if c.walkStmt(st, s) {
			return true
		}
	}
	return false
}

// loopMerge folds a loop body's effects into the outer state leniently:
// releases in the body count (the loop is assumed to run), and obligations
// acquired inside the body that are still held at its end are reported there
// (they would leak once per iteration).
func (c *checker) loopMerge(outer, body state, at *ast.BlockStmt) {
	for v, t := range body {
		if o, ok := outer[v]; ok {
			o.st = t.st
			continue
		}
		switch t.st {
		case held:
			c.pass.Reportf(at.End(), "pool buffer %q (acquired at %s) leaks every loop iteration", t.v.Name(), c.pos(t.acquiredAt))
		case maybeHeld:
			c.pass.Reportf(at.End(), "pool buffer %q (acquired at %s) leaks on some path of every loop iteration", t.v.Name(), c.pos(t.acquiredAt))
		}
	}
}

// merge combines the two arms of an if into s.
func merge(s, a state, aTerm bool, b state, bTerm bool) {
	switch {
	case aTerm && bTerm:
		// Unreachable after the if; leave s as-is (callers return true).
	case aTerm:
		replace(s, b)
	case bTerm:
		replace(s, a)
	default:
		replace(s, a)
		mergeInto(s, b)
	}
}

func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// mergeInto merges src's statuses into dst: agreement keeps the status,
// disagreement between held and released becomes maybeHeld, escape wins.
func mergeInto(dst, src state) {
	for v, t := range src {
		d, ok := dst[v]
		if !ok {
			dst[v] = t
			continue
		}
		if d.st == t.st {
			continue
		}
		if d.st == escaped || t.st == escaped {
			d.st = escaped
			continue
		}
		d.st = maybeHeld
	}
}

// walkAssign handles acquisitions (b := pool.Get(n)), aliasing, and escapes
// through assignment.
func (c *checker) walkAssign(n *ast.AssignStmt, s state) {
	// Pairwise assignment: acquisition RHS binds a new obligation to an
	// identifier LHS; anything else is scanned for uses.
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			c.bindValue(n.Lhs[i], n.Rhs[i], s)
		}
		return
	}
	for _, r := range n.Rhs {
		c.scanExpr(r, s, false)
	}
	for _, l := range n.Lhs {
		c.scanExpr(l, s, false)
	}
}

// bindValue processes one lhs = rhs pair.
func (c *checker) bindValue(lhs, rhs ast.Expr, s state) {
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	if isCall && c.isAcquire(call) != "" {
		// Grow releases its buffer argument before handing out the new one.
		c.applyReleases(call, s)
		// Scan the non-buffer arguments for stray uses.
		id, _ := ast.Unparen(lhs).(*ast.Ident)
		if id == nil {
			// s.buf = pool.Grow(...): stored straight into a field/element;
			// the obligation escapes with it.
			c.scanExpr(lhs, s, false)
			return
		}
		if id.Name == "_" {
			c.pass.Reportf(call.Pos(), "result of %s discarded: the acquired buffer can never be released", c.callName(call))
			return
		}
		v := asVar(c.pass.TypesInfo, id)
		if v == nil {
			return
		}
		if old, ok := s[v]; ok && (old.st == held || old.st == maybeHeld) {
			c.pass.Reportf(call.Pos(), "pool buffer %q (acquired at %s) is overwritten before being released", v.Name(), c.pos(old.acquiredAt))
		}
		s[v] = &track{v: v, acquiredAt: call.Pos(), st: held}
		return
	}
	// Aliasing: c := b keeps both names tracked as one obligation? The
	// conservative choice is to transfer: the old name escapes into the new
	// one, and the new name carries the obligation.
	if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if rv := asVar(c.pass.TypesInfo, rid); rv != nil {
			if t, ok := s[rv]; ok && t.st != escaped {
				if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if lv := asVar(c.pass.TypesInfo, lid); lv != nil {
						s[lv] = &track{v: lv, acquiredAt: t.acquiredAt, st: t.st}
						t.st = escaped
						return
					}
				}
				t.st = escaped
			}
		}
	}
	c.scanExpr(rhs, s, false)
	// Assigning INTO a tracked variable (plain overwrite with nil etc.)
	// drops the old obligation only if it was already settled.
	if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if lv := asVar(c.pass.TypesInfo, lid); lv != nil {
			if t, ok := s[lv]; ok && (t.st == held || t.st == maybeHeld) {
				c.pass.Reportf(lhs.Pos(), "pool buffer %q (acquired at %s) is overwritten before being released", lv.Name(), c.pos(t.acquiredAt))
				delete(s, lv)
			}
		}
		return
	}
	c.scanExpr(lhs, s, false)
}

// applyReleases marks tracked variables passed to a pool Put/Release/Grow as
// released, reporting double releases.
func (c *checker) applyReleases(call *ast.CallExpr, s state) {
	if !c.isRelease(call) {
		return
	}
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		v := asVar(c.pass.TypesInfo, id)
		if v == nil {
			continue
		}
		t, ok := s[v]
		if !ok {
			continue
		}
		switch t.st {
		case released:
			c.pass.Reportf(call.Pos(), "pool buffer %q (acquired at %s) is released twice", v.Name(), c.pos(t.acquiredAt))
		case held, maybeHeld:
			t.st = released
		}
	}
}

// scanExpr walks an expression looking for uses of tracked variables.
// Protected positions (selector base, nil comparison, pool release argument)
// leave the obligation alone; any other whole-value use escapes it.
// inCall marks that the expression is already a call argument context.
func (c *checker) scanExpr(e ast.Expr, s state, inCall bool) {
	if e == nil {
		return
	}
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := asVar(c.pass.TypesInfo, n); v != nil {
			if t, ok := s[v]; ok && t.st != escaped && t.st != released {
				t.st = escaped
			}
		}
	case *ast.SelectorExpr:
		// b.Data / b.Cap(): reading through the variable is fine.
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if v := asVar(c.pass.TypesInfo, id); v != nil {
				if _, tracked := s[v]; tracked {
					return
				}
			}
		}
		c.scanExpr(n.X, s, inCall)
	case *ast.BinaryExpr:
		// b == nil / b != nil comparisons don't escape.
		if n.Op == token.EQL || n.Op == token.NEQ {
			if isNil(c.pass.TypesInfo, n.X) || isNil(c.pass.TypesInfo, n.Y) {
				return
			}
		}
		c.scanExpr(n.X, s, inCall)
		c.scanExpr(n.Y, s, inCall)
	case *ast.CallExpr:
		if c.isRelease(n) {
			c.applyReleases(n, s)
			// Non-identifier arguments may still contain uses.
			for _, a := range n.Args {
				if _, ok := ast.Unparen(a).(*ast.Ident); !ok {
					c.scanExpr(a, s, true)
				}
			}
			return
		}
		c.scanExpr(n.Fun, s, true)
		for _, a := range n.Args {
			c.scanExpr(a, s, true)
		}
	case *ast.FuncLit:
		// Whole-closure capture: releases inside count, other uses escape.
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				c.applyReleases(call, s)
			}
			if id, ok := m.(*ast.Ident); ok {
				if v := asVar(c.pass.TypesInfo, id); v != nil {
					if t, ok := s[v]; ok && t.st == held {
						t.st = escaped
					}
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		c.scanExpr(n.X, s, inCall)
	case *ast.StarExpr:
		c.scanExpr(n.X, s, inCall)
	case *ast.IndexExpr:
		c.scanExpr(n.X, s, inCall)
		c.scanExpr(n.Index, s, inCall)
	case *ast.SliceExpr:
		c.scanExpr(n.X, s, inCall)
		c.scanExpr(n.Low, s, inCall)
		c.scanExpr(n.High, s, inCall)
		c.scanExpr(n.Max, s, inCall)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			c.scanExpr(el, s, inCall)
		}
	case *ast.KeyValueExpr:
		c.scanExpr(n.Value, s, inCall)
	case *ast.TypeAssertExpr:
		c.scanExpr(n.X, s, inCall)
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

func asVar(info *types.Info, id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	if v == nil || v.IsField() {
		return nil
	}
	return v
}

// isAcquire reports the method name if call acquires a pool buffer: a
// Get/Acquire/Grow method defined in a bufpool package returning *Buffer.
func (c *checker) isAcquire(call *ast.CallExpr) string {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !isBufpoolPkg(fn.Pkg().Path()) {
		return ""
	}
	switch fn.Name() {
	case "Get", "Acquire", "Grow":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return ""
	}
	if !isBufferPtr(sig.Results().At(0).Type()) {
		return ""
	}
	return fn.Name()
}

// isRelease reports whether call returns a buffer to a pool: Put/Release/
// Grow methods on bufpool types (Grow both releases its argument and
// acquires; the acquisition half is handled at the binding site).
func (c *checker) isRelease(call *ast.CallExpr) bool {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !isBufpoolPkg(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Put", "Release", "Grow":
		return true
	}
	return false
}

func (c *checker) callName(call *ast.CallExpr) string {
	if fn := calleeFunc(c.pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return "acquisition"
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

func isBufpoolPkg(path string) bool {
	return path == "bufpool" || strings.HasSuffix(path, "/bufpool")
}

func isBufferPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Buffer" && named.Obj().Pkg() != nil && isBufpoolPkg(named.Obj().Pkg().Path())
}

// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core types (Analyzer, Pass, Diagnostic).
//
// The container this repo builds in has no module proxy access, so the real
// x/tools framework cannot be vendored; this package mirrors its API shapes
// closely enough that every analyzer under internal/lint can be ported to
// the upstream framework (and run under `go vet -vettool`) by switching one
// import once x/tools is available. Only the pieces the rpcoiblint suite
// needs exist: single-pass analyzers over one type-checked package, position
// -carrying diagnostics, and an arbitrary per-package result value.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"rpcoib/internal/lint/ssalite"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text: the invariant enforced and the
	// escape hatch, if any.
	Doc string
	// Run applies the analyzer to one package. The returned value is
	// per-package analyzer output (e.g. collected facts) that a driver may
	// aggregate across packages; analyzers with nothing to export return nil.
	Run func(*Pass) (any, error)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// SSA is the package's SSA-lite view (per-function CFGs, def-use
	// chains, the worklist solver, and the static call graph), built once
	// per package by the driver and shared by every analyzer. This is the
	// one deliberate departure from the upstream x/tools API shape (which
	// delivers the same facility through ctrlflow/buildssa dependency
	// analyzers); porting an SSA-lite analyzer upstream means swapping this
	// field for the corresponding Analyzer.Requires result.
	SSA *ssalite.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string // analyzer name; filled by the driver if empty
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

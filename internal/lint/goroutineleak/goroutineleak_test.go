package goroutineleak_test

import (
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/goroutineleak"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "../testdata", goroutineleak.Analyzer, "goroutineleaktest")
}

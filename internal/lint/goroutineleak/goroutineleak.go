// Package goroutineleak demands that every goroutine spawned in an engine
// package has a reachable shutdown path.
//
// The sharded kernel (S22) runs real goroutines per shard, and the engine
// spawns logical processes — CQ pollers, accept loops, heartbeat monitors —
// through the Spawn convention (`exec.Env.Spawn`, `cluster.SpawnOn`,
// `sim.Sim.Spawn`). A spawned loop with no way out is an orphan: the
// faultsim battery can tear down every fabric and the poller still sits in
// its loop, holding registered buffers and skewing the leaked-future
// invariant. Ibdxnet (PAPERS.md) attributes a class of its transport bugs to
// exactly these provider-thread lifetime violations.
//
// The check is CFG-based (Pass.SSA): a spawned function fails when control
// provably cannot leave it — its Exit block is unreachable from Entry, even
// counting panics, and even following calls into package-local functions
// (ssalite.Info.NeverReturns, an interprocedural fixpoint). Every accepted
// shutdown idiom falls out of plain reachability:
//
//   - select on a done/close channel with a return or break;
//   - a loop condition (`for !stop.Load()`, bounded `for i := ...`);
//   - an error exit (`if err != nil { return }` inside the loop);
//   - `for v := range ch` (the channel can be closed);
//   - a reachable panic (teardown may legitimately kill the goroutine).
//
// What fails is the bare `for { ... }` whose body can neither return, break,
// nor panic — the orphan-poller shape. A deliberately immortal goroutine
// carries a `//lint:goroutine <justification>` marker on (or above) the
// spawn line; a marker without a justification is itself a finding.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rpcoib/internal/lint/analysis"
	"rpcoib/internal/lint/ssalite"
)

// Analyzer is the orphan-goroutine check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "every spawned goroutine or Spawn-convention process must have a reachable shutdown path",
	Run:  run,
}

const marker = "//lint:goroutine"

// spawnNames are the Spawn-convention callee names: their final func-typed
// argument runs as a (logical) goroutine.
var spawnNames = map[string]bool{
	"Spawn": true, "SpawnOn": true, "SpawnAt": true, "Go": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		markers := markerLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				check(pass, markers, n.Pos(), "go statement", spawnedFunc(pass, n.Call.Fun))
			case *ast.CallExpr:
				if fn := spawnConventionArg(pass, n); fn != nil {
					check(pass, markers, n.Pos(), "spawn", fn)
				}
			}
			return true
		})
	}
	return nil, nil
}

// spawnConventionArg returns the spawned function when call is a
// Spawn-convention call (Spawn/SpawnOn/SpawnAt/Go with a final func-typed
// argument), or nil.
func spawnConventionArg(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !spawnNames[sel.Sel.Name] || len(call.Args) == 0 {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil
	}
	last := call.Args[len(call.Args)-1]
	if t := pass.TypesInfo.TypeOf(last); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			return last
		}
	}
	return nil
}

// spawnedFunc resolves the ssalite Func a spawn expression runs: a literal
// directly, a named function or method value through the call graph. nil
// means unresolvable (external function, function-typed variable) — the
// analyzer stays silent rather than guess.
func spawnedFunc(pass *analysis.Pass, e ast.Expr) *ssalite.Func {
	if e == nil {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return pass.SSA.FuncAt(e)
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[e].(*types.Func); ok {
			return pass.SSA.FuncOf(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return pass.SSA.FuncOf(fn)
		}
	}
	return nil
}

func check(pass *analysis.Pass, markers map[int]string, pos token.Pos, what string, spawned any) {
	var fn *ssalite.Func
	switch s := spawned.(type) {
	case *ssalite.Func:
		fn = s
	case ast.Expr:
		fn = spawnedFunc(pass, s)
	}
	if fn == nil {
		return
	}
	if !pass.SSA.NeverReturns(fn) {
		return
	}
	line := pass.Fset.Position(pos).Line
	if just, ok := markerAt(markers, line); ok {
		if strings.TrimSpace(just) == "" {
			pass.Reportf(pos, "%s marker needs a justification: why may this goroutine outlive every shutdown path?", marker)
		}
		return
	}
	pass.Reportf(pos, "%s runs %s, which has no reachable shutdown path (no done-channel select, loop condition, error return, or panic): an orphan poller the faultsim battery cannot kill; add one, or justify with %s", what, fn.Name(), marker)
}

func markerAt(markers map[int]string, line int) (string, bool) {
	if j, ok := markers[line]; ok {
		return j, true
	}
	j, ok := markers[line-1]
	return j, ok
}

// markerLines maps line -> justification for every //lint:goroutine marker.
func markerLines(pass *analysis.Pass, f *ast.File) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				m[pass.Fset.Position(c.Pos()).Line] = strings.TrimPrefix(c.Text, marker)
			}
		}
	}
	return m
}

// Package determinism flags wall-clock and global-PRNG use that would break
// bit-identical simulation replay (DESIGN.md S18).
//
// The engine's time and randomness must flow through exec.Env (Now/Sleep/
// Rand) so the discrete-event simulator controls both; a stray time.Now or
// math/rand global silently diverges replays until a chaos seed happens to
// catch it. The analyzer reports:
//
//   - calls to time.Now, time.Since, time.Until, time.Sleep, time.After,
//     time.Tick, time.NewTimer, time.NewTicker, time.AfterFunc;
//   - calls to math/rand's global-source functions (rand.Intn, rand.Int63,
//     rand.Float64, rand.Perm, rand.Shuffle, rand.Seed, ...). Explicitly
//     seeded sources (rand.New(rand.NewSource(seed))) are allowed: they are
//     deterministic by construction;
//   - range-over-map loops whose body drives order-sensitive effects (queue
//     puts, transport sends, process spawns, formatted output — and, since
//     S22, kernel scheduling and cross-shard merge traffic: At/After/Post/
//     PostAt/LocalAt/Push/Emit): map iteration order varies between runs,
//     so such loops must iterate a sorted key slice instead;
//   - select statements with more than one communication case (S22): when
//     several cases are ready the runtime picks uniformly at random, so
//     shard-worker hand-offs must use a single-case receive (or the
//     deterministic mailbox/queue primitives) instead.
//
// Real-mode code that legitimately reads the wall clock (internal/exec's
// RealEnv) carries an allowlist marker with a justification:
//
//	//lint:wallclock real-mode Env: wall time IS the environment's clock
//
// on the flagged line or the line above. A marker with no justification is
// itself a finding.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rpcoib/internal/lint/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global math/rand, and map-iteration-order effects that break deterministic replay",
	Run:  run,
}

// marker is the allowlist comment prefix.
const marker = "//lint:wallclock"

// wallclock lists forbidden time package functions by name.
var wallclock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// globalRand lists math/rand package-level functions that draw from the
// process-global source. New and NewSource are absent deliberately.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// orderSensitive lists method names that publish effects whose order is
// observable by the rest of the simulation (queue hand-offs, fabric sends,
// process spawns). A map-range body reaching one of these is flagged.
var orderSensitive = map[string]bool{
	"Put": true, "TryPut": true, "TryPutUnbounded": true,
	"Send": true, "SendSized": true, "SendPooled": true,
	"Spawn": true,
	// S22 sharded-kernel surface: event scheduling and cross-shard merge
	// traffic observe their issue order (event seq numbers, mailbox keys).
	"At": true, "After": true, "Post": true, "PostAt": true,
	"LocalAt": true, "Push": true, "Emit": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		allow := markerLines(pass, f)
		report := func(pos token.Pos, format string, args ...any) {
			line := pass.Fset.Position(pos).Line
			if j, ok := allow[line]; ok {
				if strings.TrimSpace(j) == "" {
					pass.Reportf(pos, "%s marker needs a justification", marker)
				}
				return
			}
			if j, ok := allow[line-1]; ok {
				if strings.TrimSpace(j) == "" {
					pass.Reportf(pos, "%s marker needs a justification", marker)
				}
				return
			}
			pass.Reportf(pos, format, args...)
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil {
					sig, _ := fn.Type().(*types.Signature)
					pkgLevel := sig != nil && sig.Recv() == nil
					switch {
					case fn.Pkg().Path() == "time" && pkgLevel && wallclock[fn.Name()]:
						report(n.Pos(), "time.%s reads the wall clock; route through exec.Env (Now/Sleep) so simulation replay stays bit-identical", fn.Name())
					case fn.Pkg().Path() == "math/rand" && pkgLevel && globalRand[fn.Name()]:
						report(n.Pos(), "math/rand.%s draws from the global PRNG; use the environment's seeded source (exec.Env.Rand) instead", fn.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						if pos, name := orderSensitiveCall(pass.TypesInfo, n.Body); pos.IsValid() {
							report(pos, "%s inside a range over a map: iteration order varies between runs; iterate a sorted key slice instead", name)
						}
					}
				}
			case *ast.SelectStmt:
				if n.Body != nil && len(n.Body.List) > 1 {
					report(n.Select, "select with %d cases resolves ready cases by runtime coin flip; use a single-case receive or a deterministic queue/mailbox hand-off", len(n.Body.List))
				}
			}
			return true
		})
	}
	return nil, nil
}

// markerLines maps line number -> justification text for every allowlist
// marker comment in f.
func markerLines(pass *analysis.Pass, f *ast.File) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				m[pass.Fset.Position(c.Pos()).Line] = strings.TrimPrefix(c.Text, marker)
			}
		}
	}
	return m
}

// callee resolves the called function or method, or nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// orderSensitiveCall reports the first order-sensitive effect in body: a
// call to a method in the orderSensitive set on a non-stdlib receiver, or
// formatted output via fmt.
func orderSensitiveCall(info *types.Info, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch {
		case fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print"):
			pos, name = call.Pos(), "fmt."+fn.Name()
		case fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
			pos, name = call.Pos(), "fmt."+fn.Name()
		case sig != nil && sig.Recv() != nil && orderSensitive[fn.Name()] && !isStdlib(fn.Pkg().Path()):
			pos, name = call.Pos(), fn.Name()
		}
		return true
	})
	return pos, name
}

// isStdlib distinguishes standard-library packages (no module prefix with a
// dot, and not this module) from analyzed code. Fixture packages use bare
// single-element paths, which — like the rpcoib module itself — contain no
// dot in the first path element either, so the test is: stdlib iff the
// package does not belong to the rpcoib module and is not a fixture. The
// loader only ever presents module/fixture code to analyzers, so receivers
// from imported packages are stdlib exactly when they came from export data;
// their paths are things like "sync" or "net/http". We approximate: a path
// is stdlib if its first element matches a known stdlib root. For the small
// method-name set used here the only realistic collisions are container/heap
// style APIs, which don't appear inside map ranges in this codebase.
func isStdlib(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	switch first {
	case "bufio", "bytes", "container", "context", "encoding", "errors",
		"fmt", "go", "hash", "io", "log", "math", "net", "os", "path",
		"reflect", "regexp", "runtime", "sort", "strconv", "strings",
		"sync", "syscall", "time", "unicode":
		return true
	}
	return false
}

package determinism_test

import (
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../testdata", determinism.Analyzer, "determinismtest")
}

// Package analysistest runs a lint analyzer over fixture packages and checks
// its diagnostics against `// want` comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: a comment of the form
//
//	x := time.Now() // want `wall clock`
//
// asserts that the analyzer reports a diagnostic on that line matching the
// quoted regular expression (several patterns may follow one want). Every
// diagnostic must be wanted and every want must be matched.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rpcoib/internal/lint/analysis"
	"rpcoib/internal/lint/loader"
	"rpcoib/internal/lint/ssalite"
)

// expectation is one want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies a to each fixture package under <testdata>/src and reports
// mismatches between diagnostics and want comments through t. The analyzer's
// per-package results are returned in pkg order for drivers that aggregate
// facts (a test of the metricnames expansion uses this).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []any {
	t.Helper()
	ld := loader.NewFixtureLoader(filepath.Join(testdata, "src"))
	var results []any
	for _, pkgPath := range pkgs {
		pkg, err := ld.Load(pkgPath)
		if err != nil {
			t.Fatalf("%s: load %s: %v", a.Name, pkgPath, err)
		}

		var wants []*expectation
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range splitPatterns(strings.TrimPrefix(text, "want ")) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", posStr(pos), raw, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
			Pkg: pkg.Types, TypesInfo: pkg.Info,
			SSA:    ssalite.Build(pkg.Fset, pkg.Files, pkg.Types, pkg.Info),
			Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: run on %s: %v", a.Name, pkgPath, err)
		}
		results = append(results, res)

		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			ok := false
			for _, w := range wants {
				if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
					w.matched = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: unexpected diagnostic: %s", posStr(pos), d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
			}
		}
	}
	return results
}

// splitPatterns parses a want payload: one or more Go-quoted or backquoted
// regexps separated by spaces.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if q, err := strconv.Unquote(s[:i+1]); err == nil {
				out = append(out, q)
			}
			s = strings.TrimSpace(s[min(i+1, len(s)):])
		case '`':
			i := strings.IndexByte(s[1:], '`')
			if i < 0 {
				out = append(out, s[1:])
				return out
			}
			out = append(out, s[1:1+i])
			s = strings.TrimSpace(s[i+2:])
		default:
			// Unquoted single token.
			i := strings.IndexByte(s, ' ')
			if i < 0 {
				out = append(out, s)
				return out
			}
			out = append(out, s[:i])
			s = strings.TrimSpace(s[i:])
		}
	}
	return out
}

func posStr(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

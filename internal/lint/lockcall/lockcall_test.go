package lockcall_test

import (
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/lockcall"
)

func TestLockCall(t *testing.T) {
	analysistest.Run(t, "../testdata", lockcall.Analyzer, "lockcalltest")
}

// Package lockcall flags blocking engine operations performed while holding
// a sync.Mutex or sync.RWMutex — the S18 reconnect wedge, as a class.
//
// The codebase convention is that every operation that can suspend the
// caller takes the caller's exec.Env (or *sim.Proc) as its first parameter:
// RPC issue (Call/CallAsync/CallWith/Do), transport dial/send/receive,
// queue Put/Get/GetTimeout, emutex lock, Env.Sleep/Work. Holding a plain
// sync mutex across any of these wedges the cooperative scheduler: the
// blocked thread parks inside the simulator while every other thread that
// touches the mutex spins forever (the S18 bug held the client connection
// mutex across a dial racing a partition). The queue-backed emutex exists
// precisely because it may be held across blocking operations; sync mutexes
// may not.
//
// The analyzer walks each function linearly, tracking mutexes locked via
// X.Lock()/X.RLock() (released by the matching Unlock, or held to function
// end when the unlock is deferred) and reports any blocking call made while
// one is held. Blocking calls are recognized by name (Call, CallAsync,
// CallWith, Do, Dial, DialFallback, Send, SendSized, SendPooled, Recv, Put,
// Get, GetTimeout, Wait, lock, acquire, Sleep, Work) combined with the
// Env-first-parameter convention, so bufpool.NativePool.Get (no Env
// parameter; a plain mutex-guarded free list) is not confused with
// exec.Queue.Get (blocking).
//
// Since S22 the shard-worker surface is covered too: raw channel operations
// (send statements and receive expressions — the barrier hand-off shape) and
// sync.WaitGroup.Wait block unconditionally, so performing either under a
// held sync mutex is reported without the Env-parameter test. A shard worker
// parked on a channel while holding a mutex stalls every other worker at the
// next barrier — the sharded analog of the S18 reconnect wedge.
//
// Since S25 ring-based handoff is blessed, clearing the path for the batched
// verbs hot path (ROADMAP): an MPSC enqueue is a bounded CAS or append, not a
// park, so performing one while holding a mutex cannot wedge the scheduler.
// Two shapes are allowlisted:
//
//   - a channel operation in the comm clause of a select that has a default
//     case (the non-blocking poll idiom — the op either completes immediately
//     or falls through);
//   - an enqueue-family method (Push, TryPush, Enqueue, TryEnqueue, Offer,
//     Put) whose receiver is a ring type — a named type called Mailbox or
//     ending in Ring — even when it follows the Env-first-parameter
//     convention. Rings take the Env only to stamp virtual time on the
//     message, never to suspend.
//
// Statements in the select clause bodies are NOT blessed — only the comm op
// itself; and dequeue-side ring methods (Drain, Pop) stay subject to the
// normal rules, because the single consumer may legitimately block.
package lockcall

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rpcoib/internal/lint/analysis"
)

// Analyzer is the mutex-held blocking-call check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcall",
	Doc:  "no RPC call, fabric send, or other blocking operation while holding a sync mutex",
	Run:  run,
}

// blockingNames lists candidate blocking operations; a call must both match
// a name and follow the Env-first-parameter convention (or be a method on
// Env/Proc itself) to count.
var blockingNames = map[string]bool{
	"Call": true, "CallAsync": true, "CallWith": true, "Do": true,
	"Dial": true, "DialFallback": true,
	"Send": true, "SendSized": true, "SendPooled": true, "Recv": true,
	"Put": true, "Get": true, "GetTimeout": true, "Wait": true,
	"lock": true, "acquire": true,
	"Sleep": true, "Work": true,
}

// handoffNames lists the MPSC enqueue family blessed on ring receivers: a
// bounded CAS/append that cannot park the caller, so it is safe under a held
// sync mutex (the ring-based handoff rule, S25).
var handoffNames = map[string]bool{
	"Push": true, "TryPush": true, "Enqueue": true, "TryEnqueue": true,
	"Offer": true, "Put": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// checkBody scans one function body in source order. Mutex hold windows are
// tracked by the textual spelling of the lock receiver ("c.mu", "conn.mu"):
// an approximation that matches how the codebase writes lock/unlock pairs.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := map[string]ast.Expr{}   // receiver spelling -> Lock call site
	blessed := map[token.Pos]bool{} // non-blocking channel ops (select w/ default)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // walked independently by run
		case *ast.DeferStmt:
			// defer mu.Unlock(): the mutex stays held for the rest of the
			// function; leave it in held.
			return false
		case *ast.SelectStmt:
			// A select with a default case polls: its comm-clause channel ops
			// complete immediately or fall through, so they are blessed under
			// a held mutex (ring-handoff notify shape). Clause bodies are not.
			if selectHasDefault(n) {
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						blessCommOp(cc.Comm, blessed)
					}
				}
			}
		case *ast.SendStmt:
			if !blessed[n.Arrow] {
				reportChanOp(pass, n.Arrow, "channel send", held)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !blessed[n.OpPos] {
				reportChanOp(pass, n.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				if fn := calleeOf(pass, n); fn != nil && isBlocking(pass, fn, n) {
					reportHeld(pass, n, fn, held)
				}
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil {
				return true
			}
			if isSyncMutexMethod(fn) {
				key := types.ExprString(sel.X)
				switch fn.Name() {
				case "Lock", "RLock":
					held[key] = n
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return true
			}
			if isWaitGroupWait(fn) {
				reportChanOp(pass, n.Pos(), "sync.WaitGroup.Wait", held)
				return true
			}
			if isBlocking(pass, fn, n) {
				reportHeld(pass, n, fn, held)
			}
		}
		return true
	})
}

func reportHeld(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, held map[string]ast.Expr) {
	if len(held) == 0 {
		return
	}
	key := ""
	for k := range held {
		if key == "" || k < key {
			key = k // smallest spelling, for deterministic output
		}
	}
	pass.Reportf(call.Pos(), "blocking call %s while holding mutex %s: a suspended holder wedges the cooperative scheduler (use the queue-backed emutex, or release first)", fn.Name(), key)
}

// reportChanOp reports an unconditionally blocking operation (channel op,
// WaitGroup wait) performed while a sync mutex is held.
func reportChanOp(pass *analysis.Pass, pos token.Pos, what string, held map[string]ast.Expr) {
	if len(held) == 0 {
		return
	}
	key := ""
	for k := range held {
		if key == "" || k < key {
			key = k
		}
	}
	pass.Reportf(pos, "%s while holding mutex %s: a suspended holder wedges the cooperative scheduler and stalls shard workers at the next barrier", what, key)
}

// selectHasDefault reports whether the select statement has a default case.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blessCommOp records the channel-op position of one select comm statement so
// the main walk skips reporting it. Comm statements are a send, a bare
// receive, or a receive assignment.
func blessCommOp(s ast.Stmt, blessed map[token.Pos]bool) {
	switch s := s.(type) {
	case *ast.SendStmt:
		blessed[s.Arrow] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			blessed[u.OpPos] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				blessed[u.OpPos] = true
			}
		}
	}
}

// isRingHandoff reports whether fn is an MPSC enqueue on a ring type — a
// named receiver called Mailbox or ending in Ring with an enqueue-family
// method name. Such calls are bounded (CAS loop or append), never a park, so
// they are exempt from the blocking rules even under the Env convention.
func isRingHandoff(fn *types.Func) bool {
	if !handoffNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Mailbox" || strings.HasSuffix(name, "Ring")
}

// isWaitGroupWait reports whether fn is sync.WaitGroup.Wait.
func isWaitGroupWait(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isSyncMutexMethod reports whether fn is sync.Mutex/RWMutex Lock family.
func isSyncMutexMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return true
	}
	return false
}

// isBlocking applies the name + Env-convention test, after exempting the
// blessed ring-handoff enqueue family.
func isBlocking(pass *analysis.Pass, fn *types.Func, call *ast.CallExpr) bool {
	if !blockingNames[fn.Name()] {
		return false
	}
	if isRingHandoff(fn) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	// Methods on the execution environment itself (Env.Sleep, Env.Work,
	// Proc.Sleep) block by definition.
	if recv := sig.Recv(); recv != nil && isEnvLike(recv.Type()) {
		switch fn.Name() {
		case "Sleep", "Work":
			return true
		}
	}
	// Everything else blocks iff it takes the caller's Env/Proc first.
	return sig.Params().Len() > 0 && isEnvLike(sig.Params().At(0).Type())
}

// isEnvLike recognizes the execution-environment handle types: the exec.Env
// interface and the simulator's process type (named Env or Proc in an exec/
// sim package).
func isEnvLike(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return name == "Env" || name == "Proc"
}

// Package lint is the rpcoiblint suite driver: it loads the module's
// packages, runs each analyzer over the packages its invariant applies to,
// and aggregates the metricnames facts into the two-way golden comparison.
//
// The suite enforces at compile time what the engine otherwise only catches
// at runtime under a lucky chaos seed (DESIGN.md S20):
//
//	determinism      no wall clock / global PRNG / map-order effects in
//	                 engine packages (replay invariant, S18)
//	poolpair         every bufpool acquisition released exactly once
//	                 (ledger invariant Gets==Puts)
//	metricnames      metric families are package-level consts that match
//	                 metric_names.golden both ways (S16 golden guard)
//	lockcall         no blocking call while holding a sync mutex (the S18
//	                 reconnect wedge, as a class)
//	statusexhaustive status-code switches cover every status* constant
//	atomicguard      a word accessed via sync/atomic anywhere is accessed
//	                 atomically everywhere, module-wide (Facts + Merge)
//	regmem           registered buffers and MemoryBudget reservations reach
//	                 exactly one Release on every CFG path and are never
//	                 used afterwards
//	goroutineleak    every spawned goroutine in an engine package has a
//	                 reachable shutdown path
//
// The last three are interprocedural and ride on the shared SSA-lite
// facility (internal/lint/ssalite): per-function CFGs, def-use chains, a
// worklist dataflow solver, and the package call graph, built once per
// package and handed to every analyzer as Pass.SSA.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"rpcoib/internal/lint/analysis"
	"rpcoib/internal/lint/atomicguard"
	"rpcoib/internal/lint/determinism"
	"rpcoib/internal/lint/goroutineleak"
	"rpcoib/internal/lint/loader"
	"rpcoib/internal/lint/lockcall"
	"rpcoib/internal/lint/metricnames"
	"rpcoib/internal/lint/poolpair"
	"rpcoib/internal/lint/regmem"
	"rpcoib/internal/lint/ssalite"
	"rpcoib/internal/lint/statusexhaustive"
)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	poolpair.Analyzer,
	metricnames.Analyzer,
	lockcall.Analyzer,
	statusexhaustive.Analyzer,
	atomicguard.Analyzer,
	regmem.Analyzer,
	goroutineleak.Analyzer,
}

// engineScope lists the package-path infixes the determinism and
// goroutineleak analyzers patrol: the engine and substrate packages whose
// behaviour must replay bit-identically under a seed and whose logical
// processes must all be killable. internal/exec is included so that the
// real-mode environment's legitimate wall-clock reads stay visibly
// allowlisted with //lint:wallclock justifications.
var engineScope = []string{
	"internal/core", "internal/netsim", "internal/ibverbs",
	"internal/bufpool", "internal/faultsim", "internal/sim",
	"internal/cluster", "internal/hdfs", "internal/mapred",
	"internal/hbase", "internal/exec",
}

// InScope reports whether analyzer a applies to package path pkgPath. The
// lint packages themselves are exempt (fixtures and the framework mention
// the forbidden calls by name).
func InScope(a *analysis.Analyzer, pkgPath string) bool {
	if strings.Contains(pkgPath, "internal/lint") {
		return false
	}
	if a.Name != determinism.Analyzer.Name && a.Name != goroutineleak.Analyzer.Name {
		return true
	}
	for _, infix := range engineScope {
		if strings.HasSuffix(pkgPath, infix) || strings.Contains(pkgPath, infix+"/") {
			return true
		}
	}
	return false
}

// Options configures one suite run.
type Options struct {
	// Golden is the metric-name golden file; empty means
	// <module root>/internal/faultsim/testdata/metric_names.golden.
	Golden string
	// WriteGolden regenerates the golden file from the static view instead
	// of comparing against it.
	WriteGolden bool
	// Only, when non-empty, restricts the run to the named analyzers.
	Only map[string]bool
}

// Finding is one reported diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run executes the suite over the packages matched by patterns and returns
// every finding, sorted by position.
func Run(patterns []string, opts Options) ([]Finding, error) {
	pkgs, err := loader.LoadModule(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	var facts []*metricnames.Facts
	var atomicFacts []*atomicguard.Facts
	metricsRan := false
	for _, pkg := range pkgs {
		// One SSA-lite build (CFGs, def-use, call graph) per package,
		// shared by every analyzer in the suite.
		ssa := ssalite.Build(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		for _, a := range Analyzers {
			if opts.Only != nil && !opts.Only[a.Name] {
				continue
			}
			if !InScope(a, pkg.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, TypesInfo: pkg.Info, SSA: ssa,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{Pos: pkg.Fset.Position(d.Pos), Analyzer: name, Message: d.Message})
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			if a.Name == metricnames.Analyzer.Name {
				metricsRan = true
				if f, ok := res.(*metricnames.Facts); ok {
					facts = append(facts, f)
				}
			}
			if a.Name == atomicguard.Analyzer.Name {
				if f, ok := res.(*atomicguard.Facts); ok {
					atomicFacts = append(atomicFacts, f)
				}
			}
		}
	}

	// Cross-package half of atomicguard: a word atomic in one package and
	// plain in another only becomes visible once every package's facts are in.
	if len(atomicFacts) > 0 {
		fset := pkgs[0].Fset
		for _, p := range atomicguard.Merge(atomicFacts) {
			findings = append(findings, Finding{Pos: fset.Position(p.Pos), Analyzer: atomicguard.Analyzer.Name, Message: p.Message})
		}
	}

	if metricsRan {
		gf, err := goldenFindings(pkgs, facts, opts)
		if err != nil {
			return nil, err
		}
		findings = append(findings, gf...)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// goldenFindings performs the aggregate half of metricnames: expand the
// prefix graph, then compare (or rewrite) the golden file.
func goldenFindings(pkgs []*loader.Package, facts []*metricnames.Facts, opts Options) ([]Finding, error) {
	families, problems := metricnames.Expand(facts)
	var findings []Finding
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	for _, p := range problems {
		pos := token.Position{}
		if fset != nil {
			pos = fset.Position(p.Pos)
		}
		findings = append(findings, Finding{Pos: pos, Analyzer: metricnames.Analyzer.Name, Message: p.Message})
	}

	golden := opts.Golden
	if golden == "" {
		root, err := moduleRoot()
		if err != nil {
			return nil, err
		}
		golden = filepath.Join(root, "internal", "faultsim", "testdata", "metric_names.golden")
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)

	if opts.WriteGolden {
		if err := os.WriteFile(golden, []byte(strings.Join(names, "\n")+"\n"), 0o644); err != nil {
			return nil, err
		}
		return findings, nil
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		return nil, fmt.Errorf("metricnames golden (regenerate with -write-metric-golden): %v", err)
	}
	want := map[string]int{} // name -> 1-based golden line
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line != "" {
			want[line] = i + 1
		}
	}
	for _, n := range names {
		if _, ok := want[n]; !ok {
			pos := token.Position{}
			if fset != nil {
				pos = fset.Position(families[n][0])
			}
			findings = append(findings, Finding{Pos: pos, Analyzer: metricnames.Analyzer.Name,
				Message: fmt.Sprintf("metric family %q is registered but missing from %s (update it deliberately, or run -write-metric-golden)", n, golden)})
		}
	}
	for n, line := range want {
		if _, ok := families[n]; !ok {
			findings = append(findings, Finding{Pos: token.Position{Filename: golden, Line: line}, Analyzer: metricnames.Analyzer.Name,
				Message: fmt.Sprintf("golden metric family %q is no longer registered anywhere", n)})
		}
	}
	return findings, nil
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

package regmem_test

import (
	"testing"

	"rpcoib/internal/lint/analysistest"
	"rpcoib/internal/lint/regmem"
)

func TestRegMem(t *testing.T) {
	analysistest.Run(t, "../testdata", regmem.Analyzer, "regmemtest")
}

// Package regmem extends poolpair's registered-memory obligation tracking
// from statement-tree path walking to genuine CFG dataflow (Pass.SSA), and
// from buffers alone to MemoryBudget reservations.
//
// Registered memory is the scarcest resource in the design: the paper pins
// and registers every pool buffer with the HCA, and the million-client work
// (DESIGN.md S23) rations it through ibverbs.MemoryBudget. Two bug classes
// survive poolpair's conservative walk and show up in RDMAbox-style
// transports as corruption or slow leaks:
//
//   - the stale reference: a buffer used — read, sent, returned, released
//     again — after its Put/Release. The pool may already have handed the
//     registered region to another stream; writes land in someone else's
//     RPC payload.
//   - the lost reservation: MemoryBudget.TryReserve succeeds, then an early
//     error return skips the Release. The budget never recovers the bytes;
//     under the S23 admission path that is a permanent capacity loss.
//
// The analyzer runs a forward worklist solve over each function's ssalite
// CFG. Buffer obligations (bufpool Get/Acquire/Grow, exactly as poolpair
// recognizes them) are tracked through held / released / transferred
// states; budget reservations are created branch-sensitively on the success
// edge of `if b.TryReserve(n)` (and the negated form) and keyed by the
// receiver's spelling. It reports:
//
//   - any use of a buffer after its release (including releasing twice,
//     sending on a channel, or returning it) — the stale reference;
//   - any use after the obligation was handed off (channel send, goroutine
//     capture): the receiver owns the buffer now, retaining it races;
//   - a reservation or buffer released on some paths to the exit but not
//     all — the early-return leak (a reservation held on *every* path is
//     presumed handed to an owner object that releases in Close, as the SRQ
//     constructor does, and stays quiet);
//   - a TryReserve whose boolean result is discarded: on success the
//     reservation is unrecoverable.
//
// Obligations follow calls: passing a held buffer to a package-local
// function consults a computed summary of that callee (releases always /
// sometimes / never / escapes), so a release hidden one call down is seen
// rather than treated as an escape. Unknown callees escape the obligation,
// exactly as in poolpair. Releases inside defer statements satisfy
// obligations at every exit.
package regmem

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rpcoib/internal/lint/analysis"
	"rpcoib/internal/lint/ssalite"
)

// Analyzer is the registered-memory obligation check.
var Analyzer = &analysis.Analyzer{
	Name: "regmem",
	Doc:  "registered buffers and MemoryBudget reservations must reach exactly one Release on every path and never be used afterwards",
	Run:  run,
}

// st is the dataflow state of one obligation.
type st uint8

const (
	held        st = iota // release still owed on this path
	maybeHeld             // released on some joined paths, not all
	released              // released on all paths so far
	transferred           // handed off (send / goroutine); any use races
)

// okey names one obligation: a buffer local (v) or a budget receiver
// spelling (spell, e.g. "q.budget").
type okey struct {
	v     *types.Var
	spell string
}

// obl is the tracked state plus the positions diagnostics hang on.
type obl struct {
	st     st
	origin token.Pos // acquisition / successful TryReserve
	evPos  token.Pos // release or transfer site
	how    string    // transfer description
}

// fact maps obligations to states. Facts are treated as immutable by the
// solver: every transfer clones before mutating.
type fact map[okey]obl

func (f fact) clone() fact {
	c := make(fact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// pSummary is the effect of a callee on one held buffer parameter.
type pSummary uint8

const (
	sumEscapes        pSummary = iota // stored/sent/unknown: stop tracking
	sumKeeps                          // callee never releases it
	sumReleasesAlways                 // released on every callee path
	sumReleasesMaybe                  // released on some callee paths
)

// pkgState carries the cross-function pieces: callee summaries, memoized per
// (function, buffer-param index).
type pkgState struct {
	pass       *analysis.Pass
	summaries  map[*ssalite.Func]map[int]pSummary
	inProgress map[*ssalite.Func]bool
	seen       map[string]bool // finding dedupe: "offset:message"
}

func run(pass *analysis.Pass) (any, error) {
	ps := &pkgState{
		pass:       pass,
		summaries:  map[*ssalite.Func]map[int]pSummary{},
		inProgress: map[*ssalite.Func]bool{},
		seen:       map[string]bool{},
	}
	for _, fn := range pass.SSA.Funcs {
		ps.checkFunc(fn)
	}
	return nil, nil
}

// checkFunc solves the obligation dataflow for fn, then replays the final
// facts in reporting mode (the solve itself is silent: transient pre-fixpoint
// states must not produce diagnostics).
func (ps *pkgState) checkFunc(fn *ssalite.Func) {
	c := &checker{ps: ps, fn: fn, deferRel: ps.deferredReleases(fn)}
	in := fn.Solve(ssalite.Flow{
		Entry:    func() ssalite.Fact { return fact{} },
		Transfer: func(b *ssalite.Block, _ int, n ast.Node, f ssalite.Fact) ssalite.Fact { return c.transfer(f.(fact), n) },
		Branch:   func(b *ssalite.Block, e ssalite.Edge, f ssalite.Fact) ssalite.Fact { return c.branch(b, e, f.(fact)) },
		Join:     join,
	})
	c.report = true
	for _, b := range fn.Blocks {
		f, ok := in[b]
		if !ok {
			continue // unreachable
		}
		ff := f.(fact)
		for _, n := range b.Nodes {
			ff = c.transfer(ff, n)
		}
	}
	if f, ok := in[fn.Exit]; ok {
		c.checkExit(f.(fact))
	}
}

// join unions two facts; disagreement between held and released becomes
// maybeHeld, transfer dominates. Changed-detection compares states only, so
// position bookkeeping cannot prevent convergence.
func join(dst, src ssalite.Fact) (ssalite.Fact, bool) {
	if dst == nil {
		return src, true
	}
	d, s := dst.(fact), src.(fact)
	out := d
	changed := false
	set := func(k okey, o obl) {
		if !changed {
			out = d.clone()
			changed = true
		}
		out[k] = o
	}
	for k, so := range s {
		do, ok := out[k]
		if !ok {
			set(k, so)
			continue
		}
		if do.st == so.st {
			continue
		}
		switch {
		case do.st == transferred:
			// keep
		case so.st == transferred:
			set(k, so)
		case do.st == maybeHeld:
			// keep
		default:
			// held/released disagreement (or released vs maybeHeld).
			do.st = maybeHeld
			set(k, do)
		}
	}
	return out, changed
}

// deferredReleases collects the obligations released by fn's defer
// statements: they satisfy the exit check on every path.
func (ps *pkgState) deferredReleases(fn *ssalite.Func) map[okey]bool {
	rel := map[okey]bool{}
	record := func(call *ast.CallExpr) {
		if ps.isBufRelease(call) {
			for _, a := range call.Args {
				if v := ps.asVar(a); v != nil {
					rel[okey{v: v}] = true
				}
			}
		}
		if name, spell, ok := ps.budgetCall(call); ok && name == "Release" {
			rel[okey{spell: spell}] = true
		}
	}
	for _, d := range fn.Defers {
		record(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
		}
	}
	return rel
}

// checker runs one function's transfer/report machinery.
type checker struct {
	ps       *pkgState
	fn       *ssalite.Func
	deferRel map[okey]bool
	report   bool
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if !c.report {
		return
	}
	d := analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)}
	key := itoa(int(pos)) + ":" + d.Message
	if c.ps.seen[key] {
		return
	}
	c.ps.seen[key] = true
	c.ps.pass.Report(d)
}

// branch creates budget obligations on the success edge of a TryReserve
// condition: `if b.TryReserve(n)` holds on EdgeTrue, `if !b.TryReserve(n)`
// on EdgeFalse (the fallthrough).
func (c *checker) branch(b *ssalite.Block, e ssalite.Edge, f fact) ssalite.Fact {
	cond, ok := b.Ctrl.(ast.Expr)
	if !ok {
		return f
	}
	spell, pos, neg, ok := c.tryReserveCond(cond)
	if !ok {
		return f
	}
	success := e.Kind == ssalite.EdgeTrue
	if neg {
		success = e.Kind == ssalite.EdgeFalse
	}
	if !success {
		return f
	}
	out := f.clone()
	out[okey{spell: spell}] = obl{st: held, origin: pos}
	return out
}

// tryReserveCond matches `recv.TryReserve(n)` or `!recv.TryReserve(n)`.
func (c *checker) tryReserveCond(e ast.Expr) (spell string, pos token.Pos, neg bool, ok bool) {
	e = ast.Unparen(e)
	if u, isNot := e.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		neg = true
		e = ast.Unparen(u.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false, false
	}
	name, spell, isBudget := c.ps.budgetCall(call)
	if !isBudget || name != "TryReserve" {
		return "", 0, false, false
	}
	return spell, call.Pos(), neg, true
}

// transfer interprets one CFG node.
func (c *checker) transfer(f fact, n ast.Node) fact {
	if callsPanic(c.ps.pass.TypesInfo, n) {
		// The process is dying; obligations on this path are moot, and an
		// empty fact joins neutrally at Exit.
		return fact{}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		return c.assign(f, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						f = c.bind(f, name, vs.Values[i])
					}
				}
			}
		}
		return f
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if name := c.ps.bufAcquireName(call); name != "" {
				c.reportf(call.Pos(), "result of %s discarded: the acquired buffer can never be released", name)
				return f
			}
			if name, spell, ok := c.ps.budgetCall(call); ok && name == "TryReserve" {
				c.reportf(call.Pos(), "result of %s.TryReserve discarded: if it succeeded, the reservation can never be released", spell)
				return f
			}
		}
		return c.scan(f, n.X)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if v := c.ps.asVar(r); v != nil {
				if o, ok := f[okey{v: v}]; ok {
					f = c.useWhole(f, okey{v: v}, o, r.Pos(), "returned")
					continue
				}
			}
			f = c.scan(f, r)
		}
		return f
	case *ast.SendStmt:
		f = c.scan(f, n.Chan)
		if v := c.ps.asVar(n.Value); v != nil {
			k := okey{v: v}
			if o, ok := f[k]; ok {
				switch o.st {
				case held, maybeHeld:
					out := f.clone()
					out[k] = obl{st: transferred, origin: o.origin, evPos: n.Pos(), how: "sent on a channel"}
					return out
				default:
					return c.staleUse(f, k, o, n.Value.Pos())
				}
			}
		}
		return c.scan(f, n.Value)
	case *ast.GoStmt:
		return c.goStmt(f, n)
	case *ast.DeferStmt:
		return f // handled by deferredReleases at the exit check
	case *ast.IncDecStmt:
		return c.scan(f, n.X)
	case ast.Expr:
		if _, _, _, isCond := c.tryReserveCond(n); isCond {
			return f // the Branch hook owns this condition
		}
		return c.scan(f, n)
	}
	return f
}

// assign handles acquisitions, aliasing, and overwrites.
func (c *checker) assign(f fact, n *ast.AssignStmt) fact {
	if len(n.Lhs) != len(n.Rhs) {
		for _, r := range n.Rhs {
			f = c.scan(f, r)
		}
		for _, l := range n.Lhs {
			f = c.scan(f, l)
		}
		return f
	}
	for i := range n.Lhs {
		f = c.bind(f, n.Lhs[i], n.Rhs[i])
	}
	return f
}

// bind processes one lhs = rhs pair.
func (c *checker) bind(f fact, lhs, rhs ast.Expr) fact {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if name := c.ps.bufAcquireName(call); name != "" {
			f = c.applyBufReleases(f, call) // Grow releases its argument
			id, _ := ast.Unparen(lhs).(*ast.Ident)
			if id == nil {
				return c.scan(f, lhs) // stored straight into a field: escapes
			}
			if id.Name == "_" {
				c.reportf(call.Pos(), "result of %s discarded: the acquired buffer can never be released", name)
				return f
			}
			v := c.ps.asVar(id)
			if v == nil {
				return f
			}
			k := okey{v: v}
			if old, ok := f[k]; ok && (old.st == held || old.st == maybeHeld) {
				c.reportf(call.Pos(), "pool buffer %q (acquired at %s) is overwritten before being released", v.Name(), c.pos(old.origin))
			}
			out := f.clone()
			out[k] = obl{st: held, origin: call.Pos()}
			return out
		}
		f = c.call(f, call)
		return c.overwrite(f, lhs)
	}
	// Aliasing: the obligation moves to the new name.
	if rv := c.ps.asVar(rhs); rv != nil {
		if o, ok := f[okey{v: rv}]; ok {
			if lv := c.ps.asVar(lhs); lv != nil {
				out := f.clone()
				delete(out, okey{v: rv})
				out[okey{v: lv}] = o
				return out
			}
			// Stored into a field/element while held: escapes with the store;
			// stored after release: a stale reference now lives in a struct.
			return c.useWhole(f, okey{v: rv}, o, rhs.Pos(), "stored")
		}
	}
	f = c.scan(f, rhs)
	return c.overwrite(f, lhs)
}

// overwrite drops (and reports) a held obligation whose variable is
// reassigned.
func (c *checker) overwrite(f fact, lhs ast.Expr) fact {
	lv := c.ps.asVar(lhs)
	if lv == nil {
		return c.scan(f, lhs)
	}
	k := okey{v: lv}
	if o, ok := f[k]; ok {
		if o.st == held || o.st == maybeHeld {
			c.reportf(lhs.Pos(), "pool buffer %q (acquired at %s) is overwritten before being released", lv.Name(), c.pos(o.origin))
		}
		out := f.clone()
		delete(out, k)
		return out
	}
	return f
}

// goStmt hands captured/passed obligations to the spawned goroutine.
func (c *checker) goStmt(f fact, n *ast.GoStmt) fact {
	// A budget Release inside the spawned closure satisfies the reservation
	// (the goroutine now owns it).
	ast.Inspect(n.Call, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, spell, ok := c.ps.budgetCall(call); ok && name == "Release" {
			k := okey{spell: spell}
			if o, tracked := f[k]; tracked && (o.st == held || o.st == maybeHeld) {
				out := f.clone()
				out[k] = obl{st: released, origin: o.origin, evPos: call.Pos()}
				f = out
			}
		}
		return true
	})
	// Every tracked buffer mentioned anywhere in the go statement transfers.
	ast.Inspect(n.Call, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v := c.ps.asVar(id)
		if v == nil {
			return true
		}
		k := okey{v: v}
		o, tracked := f[k]
		if !tracked {
			return true
		}
		switch o.st {
		case held, maybeHeld:
			out := f.clone()
			out[k] = obl{st: transferred, origin: o.origin, evPos: n.Pos(), how: "handed to a goroutine"}
			f = out
		default:
			f = c.staleUse(f, k, o, id.Pos())
		}
		return true
	})
	return f
}

// call applies a call's effects: releases, interprocedural summaries for
// held buffers, escapes for unknown callees.
func (c *checker) call(f fact, call *ast.CallExpr) fact {
	if c.ps.bufAcquireName(call) != "" {
		// Result used inside a larger expression: never bound, not tracked.
		return c.applyBufReleases(f, call)
	}
	if c.ps.isBufRelease(call) {
		return c.applyBufReleases(f, call)
	}
	if name, spell, ok := c.ps.budgetCall(call); ok {
		if name != "Release" {
			return f // TryReserve in value context: not tracked
		}
		k := okey{spell: spell}
		o, tracked := f[k]
		if !tracked {
			return f // institutional release of a reservation made elsewhere
		}
		switch o.st {
		case released:
			c.reportf(call.Pos(), "budget reservation on %s (made at %s) is released twice", spell, c.pos(o.origin))
			return f
		default:
			out := f.clone()
			out[k] = obl{st: released, origin: o.origin, evPos: call.Pos()}
			return out
		}
	}

	f = c.scan(f, call.Fun)
	callee := c.ps.localCallee(call)
	for i, a := range call.Args {
		v := c.ps.asVar(a)
		if v == nil {
			f = c.scan(f, a)
			continue
		}
		k := okey{v: v}
		o, tracked := f[k]
		if !tracked {
			continue
		}
		switch o.st {
		case released, transferred:
			f = c.staleUse(f, k, o, a.Pos())
			continue
		}
		// Held (or maybe-held) buffer passed onward: consult the callee.
		sum := sumEscapes
		if callee != nil {
			sum = c.ps.summaryFor(callee)[i]
		}
		out := f.clone()
		switch sum {
		case sumReleasesAlways:
			out[k] = obl{st: released, origin: o.origin, evPos: call.Pos()}
		case sumReleasesMaybe:
			out[k] = obl{st: maybeHeld, origin: o.origin, evPos: call.Pos()}
		case sumKeeps:
			out[k] = o // caller still owes the release
		default:
			delete(out, k) // escapes: obligation transfers into the callee
		}
		f = out
	}
	return f
}

// applyBufReleases marks buffer arguments of a Put/Release/Grow call
// released, reporting double releases and releases after handoff.
func (c *checker) applyBufReleases(f fact, call *ast.CallExpr) fact {
	if !c.ps.isBufRelease(call) {
		return f
	}
	for _, a := range call.Args {
		v := c.ps.asVar(a)
		if v == nil {
			f = c.scan(f, a)
			continue
		}
		k := okey{v: v}
		o, tracked := f[k]
		if !tracked {
			continue
		}
		switch o.st {
		case released:
			c.reportf(call.Pos(), "pool buffer %q (acquired at %s) is released twice", v.Name(), c.pos(o.origin))
		case transferred:
			c.reportf(call.Pos(), "pool buffer %q was %s at %s and is released here too: two owners, one buffer", v.Name(), o.how, c.pos(o.evPos))
		default:
			out := f.clone()
			out[k] = obl{st: released, origin: o.origin, evPos: call.Pos()}
			f = out
		}
	}
	return f
}

// staleUse reports a use of an obligation that no longer exists on this path.
func (c *checker) staleUse(f fact, k okey, o obl, pos token.Pos) fact {
	switch o.st {
	case released:
		c.reportf(pos, "pool buffer %q is used after its release at %s: a stale registered-memory reference (the pool may have re-issued the region)", k.v.Name(), c.pos(o.evPos))
	case maybeHeld:
		c.reportf(pos, "pool buffer %q may already be released (release at %s happens on some paths): a stale registered-memory reference", k.v.Name(), c.pos(o.evPos))
	case transferred:
		c.reportf(pos, "pool buffer %q was %s at %s and must not be retained by the sender", k.v.Name(), o.how, c.pos(o.evPos))
	case held:
		// Whole-value use while held: the obligation escapes (poolpair's
		// conservative contract).
		out := f.clone()
		delete(out, k)
		return out
	}
	return f
}

// useWhole classifies a whole-value use (return, store) of a tracked buffer.
func (c *checker) useWhole(f fact, k okey, o obl, pos token.Pos, what string) fact {
	switch o.st {
	case held:
		out := f.clone()
		delete(out, k) // ownership moves with the value
		return out
	case maybeHeld:
		c.reportf(pos, "pool buffer %q is %s here but was already released on some path (release at %s)", k.v.Name(), what, c.pos(o.evPos))
	case released:
		c.reportf(pos, "pool buffer %q is %s after its release at %s: a stale registered-memory reference", k.v.Name(), what, c.pos(o.evPos))
	case transferred:
		c.reportf(pos, "pool buffer %q was %s at %s and must not be retained by the sender", k.v.Name(), o.how, c.pos(o.evPos))
	}
	out := f.clone()
	delete(out, k)
	return out
}

// scan walks an expression for uses of tracked buffers, mirroring poolpair's
// protected positions: selector bases and nil comparisons of held buffers
// are fine; the same through a released buffer is the stale-reference bug.
func (c *checker) scan(f fact, e ast.Expr) fact {
	if e == nil {
		return f
	}
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := c.ps.asVar(n); v != nil {
			if o, ok := f[okey{v: v}]; ok {
				return c.staleUse(f, okey{v: v}, o, n.Pos())
			}
		}
	case *ast.SelectorExpr:
		if v := c.ps.asVar(n.X); v != nil {
			if o, ok := f[okey{v: v}]; ok {
				if o.st == held {
					return f // b.Data while held: fine
				}
				return c.staleUse(f, okey{v: v}, o, n.X.Pos())
			}
			return f
		}
		return c.scan(f, n.X)
	case *ast.BinaryExpr:
		if n.Op == token.EQL || n.Op == token.NEQ {
			if isNil(c.ps.pass.TypesInfo, n.X) || isNil(c.ps.pass.TypesInfo, n.Y) {
				return f
			}
		}
		f = c.scan(f, n.X)
		return c.scan(f, n.Y)
	case *ast.CallExpr:
		return c.call(f, n)
	case *ast.FuncLit:
		// Whole-closure capture: a release inside satisfies the obligation
		// (poolpair parity); any other capture of a held buffer escapes it,
		// and capture of a released one is stale.
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				f = c.applyBufReleases(f, call)
			}
			if id, ok := m.(*ast.Ident); ok {
				if v := c.ps.asVar(id); v != nil {
					if o, ok := f[okey{v: v}]; ok && o.st != released {
						f = c.staleUse(f, okey{v: v}, o, id.Pos())
					}
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		return c.scan(f, n.X)
	case *ast.StarExpr:
		return c.scan(f, n.X)
	case *ast.IndexExpr:
		f = c.scan(f, n.X)
		return c.scan(f, n.Index)
	case *ast.SliceExpr:
		for _, x := range []ast.Expr{n.X, n.Low, n.High, n.Max} {
			f = c.scan(f, x)
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			f = c.scan(f, el)
		}
	case *ast.KeyValueExpr:
		return c.scan(f, n.Value)
	case *ast.TypeAssertExpr:
		return c.scan(f, n.X)
	}
	return f
}

// checkExit reports obligations that reach the function exit unsettled.
func (c *checker) checkExit(f fact) {
	keys := make([]okey, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return f[keys[i]].origin < f[keys[j]].origin })
	for _, k := range keys {
		o := f[k]
		if c.deferRel[k] {
			continue // a defer releases it on every path
		}
		switch {
		case k.v != nil && o.st == held:
			c.reportf(o.origin, "pool buffer %q (acquired here) is not released on any path", k.v.Name())
		case k.v != nil && o.st == maybeHeld:
			c.reportf(o.origin, "pool buffer %q (acquired here) is released on some paths but leaks on others", k.v.Name())
		case k.v == nil && o.st == maybeHeld:
			c.reportf(o.origin, "budget reservation on %s is released on some paths but leaks on others: an early return is skipping the Release", k.spell)
			// A reservation held on every path is presumed handed to an owner
			// object that releases in Close (the SRQ-constructor shape).
		}
	}
}

// summaryFor computes (and memoizes) the per-buffer-parameter release
// summary of fn. Recursion (direct or mutual) degrades to escapes.
func (ps *pkgState) summaryFor(fn *ssalite.Func) map[int]pSummary {
	if s, ok := ps.summaries[fn]; ok {
		return s
	}
	if ps.inProgress[fn] {
		return map[int]pSummary{}
	}
	ps.inProgress[fn] = true
	defer delete(ps.inProgress, fn)

	sum := map[int]pSummary{}
	params := ps.bufferParams(fn)
	if len(params) > 0 {
		c := &checker{ps: ps, fn: fn, deferRel: ps.deferredReleases(fn)}
		for idx, v := range params {
			k := okey{v: v}
			in := fn.Solve(ssalite.Flow{
				Entry:    func() ssalite.Fact { return fact{k: obl{st: held, origin: v.Pos()}} },
				Transfer: func(b *ssalite.Block, _ int, n ast.Node, f ssalite.Fact) ssalite.Fact { return c.transfer(f.(fact), n) },
				Branch:   func(b *ssalite.Block, e ssalite.Edge, f ssalite.Fact) ssalite.Fact { return c.branch(b, e, f.(fact)) },
				Join:     join,
			})
			s := sumEscapes
			if exitF, ok := in[fn.Exit]; ok {
				if o, tracked := exitF.(fact)[k]; tracked {
					switch o.st {
					case released:
						s = sumReleasesAlways
					case maybeHeld:
						s = sumReleasesMaybe
					case held:
						s = sumKeeps
					}
				}
			}
			if c.deferRel[k] && s != sumEscapes {
				s = sumReleasesAlways
			}
			sum[idx] = s
		}
	}
	ps.summaries[fn] = sum
	return sum
}

// bufferParams maps flattened parameter index -> *types.Var for fn's
// *bufpool.Buffer parameters.
func (ps *pkgState) bufferParams(fn *ssalite.Func) map[int]*types.Var {
	var ft *ast.FuncType
	switch n := fn.Node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
	case *ast.FuncLit:
		ft = n.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	out := map[int]*types.Var{}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a slot
		}
		for i := 0; i < n; i++ {
			if i < len(field.Names) {
				if v, ok := ps.pass.TypesInfo.Defs[field.Names[i]].(*types.Var); ok && v.Name() != "_" && isBufferPtr(v.Type()) {
					out[idx] = v
				}
			}
			idx++
		}
	}
	return out
}

// ---- recognizers (poolpair- and scale.go-shaped) ----

// bufAcquireName reports the method name if call acquires a pool buffer.
func (ps *pkgState) bufAcquireName(call *ast.CallExpr) string {
	fn := calleeFunc(ps.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !isBufpoolPkg(fn.Pkg().Path()) {
		return ""
	}
	switch fn.Name() {
	case "Get", "Acquire", "Grow":
	default:
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 || !isBufferPtr(sig.Results().At(0).Type()) {
		return ""
	}
	return fn.Name()
}

// isBufRelease reports whether call returns a buffer to a pool.
func (ps *pkgState) isBufRelease(call *ast.CallExpr) bool {
	fn := calleeFunc(ps.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !isBufpoolPkg(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Put", "Release", "Grow":
		return true
	}
	return false
}

// budgetCall matches TryReserve/Release method calls on an
// ibverbs.MemoryBudget receiver, returning the method name and the
// receiver's spelling (the obligation key).
func (ps *pkgState) budgetCall(call *ast.CallExpr) (name, spell string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, _ := ps.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", "", false
	}
	switch fn.Name() {
	case "TryReserve", "Release":
	default:
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || named.Obj().Name() != "MemoryBudget" || named.Obj().Pkg() == nil || !isIbverbsPkg(named.Obj().Pkg().Path()) {
		return "", "", false
	}
	return fn.Name(), types.ExprString(sel.X), true
}

// localCallee resolves call to a function with a body in this package.
func (ps *pkgState) localCallee(call *ast.CallExpr) *ssalite.Func {
	fn := calleeFunc(ps.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	return ps.pass.SSA.FuncOf(fn)
}

func (ps *pkgState) asVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := ps.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = ps.pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	if v == nil || v.IsField() {
		return nil
	}
	return v
}

func (c *checker) pos(p token.Pos) string {
	pos := c.ps.pass.Fset.Position(p)
	return pos.Filename[strings.LastIndexByte(pos.Filename, '/')+1:] + ":" + itoa(pos.Line)
}

// callsPanic reports whether node n contains a call to the builtin panic
// (outside nested function literals).
func callsPanic(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

func isBufpoolPkg(path string) bool {
	return path == "bufpool" || strings.HasSuffix(path, "/bufpool")
}

func isIbverbsPkg(path string) bool {
	return path == "ibverbs" || strings.HasSuffix(path, "/ibverbs")
}

func isBufferPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Buffer" && named.Obj().Pkg() != nil && isBufpoolPkg(named.Obj().Pkg().Path())
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

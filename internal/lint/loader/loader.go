// Package loader type-checks Go packages for the lint suite without
// depending on golang.org/x/tools/go/packages.
//
// Module mode (LoadModule) shells out to `go list -export -deps -json`: the
// go tool selects build-tagged files and produces gc export data for every
// dependency, so only the module's own packages are parsed and type-checked
// from source — dependencies are imported from compiled export data exactly
// the way `go vet` does it. Fixture mode (LoadFixture) type-checks a plain
// directory tree (analysistest testdata), resolving sibling fixture packages
// from the same tree and the standard library from source.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// LoadModule loads the module packages matched by patterns (plus type
// information for everything they import) from the enclosing Go module.
// Only packages belonging to the main module are returned: dependencies are
// consumed as export data, never re-analyzed.
func LoadModule(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPkg
	exports := map[string]string{} // import path -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, &p)
	}

	fset := token.NewFileSet()
	ours := map[string]*types.Package{}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := importFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if tp, ok := ours[path]; ok {
			return tp, nil
		}
		return gc.Import(path)
	})

	var loaded []*Package
	// `go list -deps` emits packages in dependency order, so by the time a
	// module package is reached every module package it imports is in ours.
	for _, p := range pkgs {
		if p.Module == nil || len(p.GoFiles) == 0 {
			continue // dependency (stdlib): imported via export data on demand
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %v", p.ImportPath, err)
		}
		ours[p.ImportPath] = tp
		loaded = append(loaded, &Package{PkgPath: p.ImportPath, Fset: fset, Files: files, Types: tp, Info: info})
	}
	return loaded, nil
}

type importFunc func(path string) (*types.Package, error)

func (f importFunc) Import(path string) (*types.Package, error) { return f(path) }

// FixtureLoader type-checks packages rooted at a testdata/src directory.
// An import path resolves to <root>/<path> when that directory exists;
// anything else falls back to the standard library, type-checked from
// $GOROOT source (fixtures only import small stdlib packages, so this stays
// fast).
type FixtureLoader struct {
	Root  string
	Fset  *token.FileSet
	cache map[string]*Package
	src   types.Importer
}

// NewFixtureLoader creates a loader over root (a testdata/src directory).
func NewFixtureLoader(root string) *FixtureLoader {
	fset := token.NewFileSet()
	return &FixtureLoader{
		Root:  root,
		Fset:  fset,
		cache: map[string]*Package{},
		src:   importer.ForCompiler(fset, "source", nil),
	}
}

// Load type-checks the fixture package at import path path.
func (l *FixtureLoader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: importFunc(func(ipath string) (*types.Package, error) {
		if ipath == "unsafe" {
			return types.Unsafe, nil
		}
		if st, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(ipath))); err == nil && st.IsDir() {
			p, err := l.Load(ipath)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.src.Import(ipath)
	})}
	tp, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check fixture %s: %v", path, err)
	}
	p := &Package{PkgPath: path, Fset: l.Fset, Files: files, Types: tp, Info: info}
	l.cache[path] = p
	return p, nil
}

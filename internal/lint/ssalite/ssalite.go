// Package ssalite is the lint suite's lightweight dataflow layer (DESIGN.md
// S25): per-function control-flow graphs, def-use chains, a worklist
// dataflow solver, and a package-level static call graph, all derived from
// the `go/ast` + `go/types` information the loader already produces.
//
// It is "SSA-lite" in the sense of golang.org/x/tools/go/cfg rather than
// go/ssa: no value renaming or instruction lowering — blocks hold the
// original AST statements in execution order, so analyzers keep reporting
// against source positions — but enough structure that an analyzer can be
// flow-sensitive (facts per CFG edge rather than per syntax tree walk),
// branch-sensitive (true/false edges out of conditions), and interprocedural
// (call edges resolved through go/types, per-function summaries iterated to
// a fixpoint). The driver builds one Info per package and shares it with
// every analyzer through analysis.Pass.SSA.
//
// The CFG dialect:
//
//   - Every function (declaration or literal) with a body becomes a Func
//     with an Entry block, a synthetic Exit block, and one Block per
//     straight-line run of statements. Composite statements are decomposed:
//     an if contributes its init and condition to the current block and its
//     arms become successor blocks; the if node itself never appears.
//   - A block that ends in a two-way branch carries the controlling node in
//     Ctrl (the condition expression, or the range/switch statement) and
//     exactly one EdgeTrue and one EdgeFalse successor. `for {}` emits a
//     single unconditional back edge — a loop with no exit is visible as a
//     CFG region from which Exit is unreachable, which is precisely what
//     the goroutineleak analyzer checks.
//   - `return` and calls to the builtin panic edge to Exit (panic terminates
//     the goroutine, so it is a legitimate way out of a poller loop).
//     `select {}` and an empty-body for loop have no successors at all.
//   - Defer bodies are not in the CFG (they run at exit, after the facts
//     under analysis are settled); they are collected in Func.Defers for
//     analyzers that credit deferred cleanup, mirroring poolpair.
package ssalite

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

const (
	// EdgeNext is an unconditional transfer.
	EdgeNext EdgeKind = iota
	// EdgeTrue leaves a branching block when its Ctrl holds (an if/for
	// condition is true, a range has another element, a switch case matches).
	EdgeTrue
	// EdgeFalse is the complementary edge out of a branching block.
	EdgeFalse
)

// Edge is one directed CFG edge.
type Edge struct {
	To   *Block
	Kind EdgeKind
}

// Block is one basic block: Nodes execute in order, then control follows one
// of Succs. A block with a non-nil Ctrl ends in a two-way branch decided by
// that node.
type Block struct {
	Index int
	Nodes []ast.Node
	Ctrl  ast.Node // controlling node for True/False successors, if any
	Succs []Edge
	Preds []*Block
	what  string // debug label ("entry", "if.then", "for.head", ...)
}

// String returns a short debug label.
func (b *Block) String() string { return b.what }

// Ref is one definition or use of a variable inside a function, addressed by
// its CFG position (block + node index within the block).
type Ref struct {
	Block *Block
	Index int // index into Block.Nodes; -1 for parameters (entry defs)
	Ident *ast.Ident
	Write bool
}

// Func is the SSA-lite view of one function or function literal.
type Func struct {
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Obj is the declared function object; nil for literals.
	Obj *types.Func
	// Parent encloses a function literal; nil for declarations.
	Parent *Func
	Body   *ast.BlockStmt

	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists the function's defer statements (not part of the CFG).
	Defers []*ast.DeferStmt

	refs map[*types.Var][]Ref
}

// Name returns a human-readable identifier for diagnostics.
func (f *Func) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	if f.Parent != nil {
		return "func literal in " + f.Parent.Name()
	}
	return "func literal"
}

// Pos returns the function's source position.
func (f *Func) Pos() token.Pos { return f.Node.Pos() }

// Refs returns the definition/use sites of v inside f, in source order.
func (f *Func) Refs(v *types.Var) []Ref { return f.refs[v] }

// CallSite is one statically resolved call inside a function.
type CallSite struct {
	Caller *Func
	Call   *ast.CallExpr
	// Callee is the called function object (which may or may not have a
	// body in this package — FuncOf reports).
	Callee *types.Func
}

// Info is the SSA-lite view of one type-checked package: every function's
// CFG plus the package-internal static call graph. Build one with Build;
// the lint driver exposes it to analyzers as Pass.SSA.
type Info struct {
	Fset      *token.FileSet
	Pkg       *types.Package
	TypesInfo *types.Info

	// Funcs lists every function and function literal with a body, in
	// source order (literals after their enclosing declaration).
	Funcs []*Func

	funcOf    map[ast.Node]*Func
	byObj     map[*types.Func]*Func
	callsFrom map[*Func][]CallSite

	neverReturns map[*Func]bool
}

// Build constructs the SSA-lite view of one package.
func Build(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Info {
	in := &Info{
		Fset: fset, Pkg: pkg, TypesInfo: info,
		funcOf:    map[ast.Node]*Func{},
		byObj:     map[*types.Func]*Func{},
		callsFrom: map[*Func][]CallSite{},
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			obj, _ := info.Defs[decl.Name].(*types.Func)
			fn := &Func{Node: decl, Obj: obj, Body: decl.Body}
			in.addFunc(fn)
			return false // literals inside are collected by addFunc
		})
	}
	// Top-level function literals (package var initializers).
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncDecl); ok {
				return false
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				in.addLit(lit, nil)
				return false
			}
			return true
		})
	}
	in.buildNeverReturns()
	return in
}

// addFunc registers fn, builds its CFG/def-use/call sites, and recurses into
// nested function literals.
func (in *Info) addFunc(fn *Func) {
	in.Funcs = append(in.Funcs, fn)
	in.funcOf[fn.Node] = fn
	if fn.Obj != nil {
		in.byObj[fn.Obj] = fn
	}
	buildCFG(fn)
	buildRefs(in.TypesInfo, fn)
	in.collectCalls(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			in.addLit(lit, fn)
			return false
		}
		return true
	})
}

func (in *Info) addLit(lit *ast.FuncLit, parent *Func) {
	in.addFunc(&Func{Node: lit, Parent: parent, Body: lit.Body})
}

// collectCalls records every statically resolvable call in fn (excluding
// nested literals, which own their calls).
func (in *Info) collectCalls(fn *Func) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := in.StaticCallee(call); callee != nil {
			in.callsFrom[fn] = append(in.callsFrom[fn], CallSite{Caller: fn, Call: call, Callee: callee})
		}
		return true
	})
}

// FuncAt returns the Func for a *ast.FuncDecl or *ast.FuncLit node, or nil.
func (in *Info) FuncAt(n ast.Node) *Func { return in.funcOf[n] }

// FuncOf returns the Func whose body implements obj in this package, or nil
// (external function, interface method, or bodyless declaration).
func (in *Info) FuncOf(obj *types.Func) *Func { return in.byObj[obj] }

// CallsFrom returns fn's statically resolved call sites in source order.
func (in *Info) CallsFrom(fn *Func) []CallSite { return in.callsFrom[fn] }

// StaticCallee resolves call to a function or method object, or nil for
// dynamic calls (function values, type conversions, builtins).
func (in *Info) StaticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := in.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := in.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// NeverReturns reports whether control provably cannot leave fn: its Exit
// block is unreachable from Entry even counting panics, treating calls to
// package-local functions that themselves never return as terminating the
// path. A dedicated poller loop with no shutdown path is NeverReturns; a
// loop that can break, return, or panic is not. Computed to a fixpoint over
// the package call graph at Build time.
func (in *Info) NeverReturns(fn *Func) bool { return in.neverReturns[fn] }

// buildNeverReturns iterates exit-reachability to a fixpoint: marking one
// function no-return can cut the only exit path of its callers, so repeat
// until stable.
func (in *Info) buildNeverReturns() {
	in.neverReturns = map[*Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, fn := range in.Funcs {
			if in.neverReturns[fn] {
				continue
			}
			if !in.exitReachable(fn) {
				in.neverReturns[fn] = true
				changed = true
			}
		}
	}
}

// exitReachable reports whether fn.Exit is reachable from fn.Entry, cutting
// paths at calls to functions currently known to never return.
func (in *Info) exitReachable(fn *Func) bool {
	seen := make([]bool, len(fn.Blocks))
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		if b == fn.Exit {
			return true
		}
		for _, n := range b.Nodes {
			if in.nodeNeverReturns(n) {
				return false // control never passes this node
			}
		}
		for _, e := range b.Succs {
			if visit(e.To) {
				return true
			}
		}
		return false
	}
	return visit(fn.Entry)
}

// nodeNeverReturns reports whether executing n is guaranteed to enter a
// never-returning callee (so nothing after n in its block runs). Calls
// inside nested function literals don't count — defining a closure runs
// nothing.
func (in *Info) nodeNeverReturns(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if callee := in.StaticCallee(call); callee != nil {
				if cf := in.byObj[callee]; cf != nil && in.neverReturns[cf] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

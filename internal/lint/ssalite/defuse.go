package ssalite

import (
	"go/ast"
	"go/token"
	"go/types"
)

// buildRefs records every definition and use of a local variable inside fn,
// addressed by CFG position. Parameters (and the receiver) are entry defs
// with Index -1; range Key/Value bindings are defs against the range head
// block. Nested function literals own their refs — a closure's touch of a
// captured variable is visible to the enclosing function only as whatever
// node carries the literal.
func buildRefs(info *types.Info, fn *Func) {
	fn.refs = map[*types.Var][]Ref{}
	add := func(b *Block, idx int, id *ast.Ident, write bool) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, _ := obj.(*types.Var)
		if v == nil || v.IsField() {
			return
		}
		fn.refs[v] = append(fn.refs[v], Ref{Block: b, Index: idx, Ident: id, Write: write})
	}

	// Parameters and results named in the signature are entry definitions.
	var ft *ast.FuncType
	switch n := fn.Node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
		if n.Recv != nil {
			for _, f := range n.Recv.List {
				for _, nm := range f.Names {
					add(fn.Entry, -1, nm, true)
				}
			}
		}
	case *ast.FuncLit:
		ft = n.Type
	}
	if ft != nil {
		for _, f := range ft.Params.List {
			for _, nm := range f.Names {
				add(fn.Entry, -1, nm, true)
			}
		}
		if ft.Results != nil {
			for _, f := range ft.Results.List {
				for _, nm := range f.Names {
					add(fn.Entry, -1, nm, true)
				}
			}
		}
	}

	for _, b := range fn.Blocks {
		for idx, n := range b.Nodes {
			refNode(b, idx, n, add)
		}
		if rs, ok := b.Ctrl.(*ast.RangeStmt); ok {
			if id, ok := rs.Key.(*ast.Ident); ok {
				add(b, -1, id, true)
			}
			if id, ok := rs.Value.(*ast.Ident); ok {
				add(b, -1, id, true)
			}
		}
	}
}

// refNode classifies the idents under one block node as defs or uses.
func refNode(b *Block, idx int, n ast.Node, add func(*Block, int, *ast.Ident, bool)) {
	writes := map[*ast.Ident]bool{}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				writes[id] = true
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					add(b, idx, id, false) // compound assignment also reads
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			writes[id] = true
			add(b, idx, id, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, nm := range vs.Names {
						writes[nm] = true
					}
				}
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			add(b, idx, id, writes[id])
		}
		return true
	})
}

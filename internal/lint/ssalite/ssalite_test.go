package ssalite

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one source string and returns its Info.
func load(t *testing.T, src string) *Info {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return Build(fset, []*ast.File{f}, pkg, info)
}

func fn(t *testing.T, in *Info, name string) *Func {
	t.Helper()
	for _, f := range in.Funcs {
		if f.Obj != nil && f.Obj.Name() == name {
			return f
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

const cfgSrc = `package p

func spin() {
	for {
	}
}

func spinCall() {
	spin()
}

func poller(done chan struct{}, work chan int) {
	for {
		select {
		case <-done:
			return
		case v := <-work:
			_ = v
		}
	}
}

func bounded(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

func panics(x int) {
	for {
		if x > 0 {
			panic("boom")
		}
	}
}

func ranged(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func labeled(xs []int) {
outer:
	for {
		for _, x := range xs {
			if x == 0 {
				break outer
			}
		}
	}
}

func switcher(x int) int {
	switch x {
	case 0:
		return 1
	case 1:
		fallthrough
	case 2:
		return 2
	}
	return 3
}
`

// TestNeverReturns exercises exit reachability: bare spin loops (directly and
// through a package-local call) never return; select-on-done pollers,
// bounded loops, panicking loops, ranges, labeled breaks, and switches all
// can leave.
func TestNeverReturns(t *testing.T) {
	in := load(t, cfgSrc)
	want := map[string]bool{
		"spin": true, "spinCall": true,
		"poller": false, "bounded": false, "panics": false,
		"ranged": false, "labeled": false, "switcher": false,
	}
	for name, w := range want {
		if got := in.NeverReturns(fn(t, in, name)); got != w {
			t.Errorf("NeverReturns(%s) = %v, want %v", name, got, w)
		}
	}
}

// TestRefs checks def-use recording: parameter defs at entry, writes vs
// reads, range bindings.
func TestRefs(t *testing.T) {
	in := load(t, cfgSrc)
	f := fn(t, in, "bounded")
	var sum *types.Var
	for v := range f.refs {
		if v.Name() == "sum" {
			sum = v
		}
	}
	if sum == nil {
		t.Fatal("no refs for sum")
	}
	refs := f.Refs(sum)
	writes, reads := 0, 0
	for _, r := range refs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	// sum := 0 and sum += i are writes; sum += i also reads; return sum reads.
	if writes != 2 || reads < 2 {
		t.Errorf("sum refs: %d writes, %d reads; want 2 writes, >=2 reads", writes, reads)
	}
}

// TestSolveReachingBranch runs a tiny branch-sensitive flow: count the
// blocks reached on the true side of `x > 0`.
func TestSolveReachingBranch(t *testing.T) {
	in := load(t, `package p
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}`)
	f := fn(t, in, "f")
	type fact struct{ onTrue bool }
	res := f.Solve(Flow{
		Entry:    func() Fact { return fact{} },
		Transfer: func(_ *Block, _ int, _ ast.Node, fa Fact) Fact { return fa },
		Branch: func(b *Block, e Edge, fa Fact) Fact {
			if e.Kind == EdgeTrue {
				return fact{onTrue: true}
			}
			return fa
		},
		Join: func(dst, src Fact) (Fact, bool) {
			if dst == nil {
				return src, true
			}
			d, s := dst.(fact), src.(fact)
			m := fact{onTrue: d.onTrue || s.onTrue}
			return m, m != d
		},
	})
	sawTrue := false
	for b, fa := range res {
		if fa.(fact).onTrue && b != f.Exit {
			sawTrue = true
		}
	}
	if !sawTrue {
		t.Error("no block saw the EdgeTrue fact")
	}
	if ex, ok := res[f.Exit]; !ok || !ex.(fact).onTrue {
		t.Error("exit should join both arms and carry onTrue")
	}
}

// TestCallGraph checks static call resolution and FuncOf round-trips.
func TestCallGraph(t *testing.T) {
	in := load(t, cfgSrc)
	f := fn(t, in, "spinCall")
	calls := in.CallsFrom(f)
	if len(calls) != 1 || calls[0].Callee.Name() != "spin" {
		t.Fatalf("spinCall calls = %v", calls)
	}
	if in.FuncOf(calls[0].Callee) != fn(t, in, "spin") {
		t.Error("FuncOf(spin) mismatch")
	}
}

package ssalite

import (
	"go/ast"
	"go/token"
)

// buildCFG populates fn.Entry/Exit/Blocks from fn.Body.
func buildCFG(fn *Func) {
	b := &cfgBuilder{fn: fn, labels: map[string]*labelScope{}}
	fn.Entry = b.newBlock("entry")
	fn.Exit = b.newBlock("exit")
	b.cur = fn.Entry
	b.stmt(fn.Body)
	if b.cur != nil {
		b.edge(b.cur, fn.Exit, EdgeNext) // fall off the end
	}
	for _, g := range b.gotos {
		if ls, ok := b.labels[g.label]; ok && ls.target != nil {
			b.edge(g.from, ls.target, EdgeNext)
		}
	}
}

// loopScope tracks the break/continue targets of the innermost loop or
// switch/select (break only).
type loopScope struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select
	label      string
}

// labelScope resolves a declared label: goto jumps to target; labeled
// break/continue resolve through the loop stack by label name.
type labelScope struct {
	target *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	fn     *Func
	cur    *Block // nil while statically unreachable
	loops  []*loopScope
	labels map[string]*labelScope
	gotos  []pendingGoto

	// pendingLabel names the label attached to the next loop/switch/select
	// statement, so `break L` / `continue L` can find it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(what string) *Block {
	blk := &Block{Index: len(b.fn.Blocks), what: what}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind) {
	from.Succs = append(from.Succs, Edge{To: to, Kind: kind})
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting a fresh block if the
// walk is currently unreachable (dead code keeps a CFG, just no preds).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	if isPanicNode(n) {
		b.edge(b.cur, b.fn.Exit, EdgeNext)
		b.cur = nil
	}
}

// isPanicNode reports whether n is (or textually contains, outside nested
// literals) a call to the builtin panic: control unwinds out of the function
// there.
func isPanicNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// branch ends the current block with a two-way decision controlled by ctrl.
func (b *cfgBuilder) branch(ctrl ast.Node, onTrue, onFalse *Block) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Ctrl = ctrl
	b.edge(b.cur, onTrue, EdgeTrue)
	b.edge(b.cur, onFalse, EdgeFalse)
	b.cur = nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range n.List {
			b.stmt(st)
		}

	case *ast.ReturnStmt:
		b.add(n)
		if b.cur != nil {
			b.edge(b.cur, b.fn.Exit, EdgeNext)
			b.cur = nil
		}

	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if t := b.findLoop(n.Label, false); t != nil {
				b.add(n)
				if b.cur != nil {
					b.edge(b.cur, t.breakTo, EdgeNext)
				}
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findLoop(n.Label, true); t != nil {
				b.add(n)
				if b.cur != nil {
					b.edge(b.cur, t.continueTo, EdgeNext)
				}
			}
			b.cur = nil
		case token.GOTO:
			b.add(n)
			if b.cur != nil && n.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: n.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder (the clause list is walked there);
			// at this level just stop the block — switchStmt wires the edge.
			b.cur = nil
		}

	case *ast.LabeledStmt:
		target := b.newBlock("label." + n.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, target, EdgeNext)
		}
		b.cur = target
		b.labels[n.Label.Name] = &labelScope{target: target}
		b.pendingLabel = n.Label.Name
		b.stmt(n.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.stmt(n.Init)
		b.add(n.Cond)
		then := b.newBlock("if.then")
		after := b.newBlock("if.done")
		onFalse := after
		var els *Block
		if n.Else != nil {
			els = b.newBlock("if.else")
			onFalse = els
		}
		b.branch(n.Cond, then, onFalse)
		b.cur = then
		b.stmt(n.Body)
		if b.cur != nil {
			b.edge(b.cur, after, EdgeNext)
		}
		if els != nil {
			b.cur = els
			b.stmt(n.Else)
			if b.cur != nil {
				b.edge(b.cur, after, EdgeNext)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(n.Init)
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		after := b.newBlock("for.done")
		post := head
		if n.Post != nil {
			post = b.newBlock("for.post")
		}
		if b.cur != nil {
			b.edge(b.cur, head, EdgeNext)
		}
		b.cur = head
		if n.Cond != nil {
			b.add(n.Cond)
			b.branch(n.Cond, body, after)
		} else {
			b.edge(head, body, EdgeNext) // `for {`: no exit edge from the head
			b.cur = nil
		}
		b.pushLoop(&loopScope{breakTo: after, continueTo: post, label: label})
		b.cur = body
		b.stmt(n.Body)
		if b.cur != nil {
			b.edge(b.cur, post, EdgeNext)
		}
		if n.Post != nil {
			b.cur = post
			b.stmt(n.Post)
			if b.cur != nil {
				b.edge(b.cur, head, EdgeNext)
			}
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(n.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		if b.cur != nil {
			b.edge(b.cur, head, EdgeNext)
		}
		// The range head both decides (another element?) and defines the
		// iteration variables; the statement is the controlling node and
		// buildRefs records the Key/Value bindings against the head block.
		b.cur = head
		b.branch(n, body, after)
		b.pushLoop(&loopScope{breakTo: after, continueTo: head, label: label})
		b.cur = body
		b.stmt(n.Body)
		if b.cur != nil {
			b.edge(b.cur, head, EdgeNext)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(n.Init, n.Tag, n.Body)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(n)

	case *ast.SelectStmt:
		label := b.takeLabel()
		if b.cur == nil {
			b.cur = b.newBlock("unreachable")
		}
		after := b.newBlock("select.done")
		dispatch := b.cur
		b.cur = nil
		b.pushLoop(&loopScope{breakTo: after, label: label})
		for _, cl := range n.Body.List {
			comm := cl.(*ast.CommClause)
			cb := b.newBlock("select.case")
			if dispatch != nil {
				b.edge(dispatch, cb, EdgeNext)
			}
			b.cur = cb
			b.stmt(comm.Comm)
			for _, st := range comm.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, after, EdgeNext)
			}
		}
		b.popLoop()
		// select{} blocks forever: no clauses, no edge to after.
		b.cur = after

	case *ast.DeferStmt:
		b.fn.Defers = append(b.fn.Defers, n)
		b.add(n)

	default:
		// Assignments, declarations, expression statements, go statements,
		// sends, inc/dec, empty statements: straight-line nodes.
		b.add(s)
	}
}

// typeSwitchStmt builds `switch v := x.(type)`: the dispatch block holds the
// init and the guard assignment (whose subtree excludes the clause bodies),
// then the clause machinery is shared with expression switches.
func (b *cfgBuilder) typeSwitchStmt(n *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	b.stmt(n.Init)
	b.add(n.Assign)
	b.switchClauses(label, n.Body)
}

// switchStmt builds expression switches: the dispatch block holds init/tag,
// every clause is a successor, and a missing default adds a direct
// dispatch→after edge (no case may match).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	b.switchClauses(label, body)
}

// switchClauses wires the clause blocks of a switch whose dispatch block is
// the current block.
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	dispatch := b.cur
	after := b.newBlock("switch.done")
	b.cur = nil
	b.pushLoop(&loopScope{breakTo: after, label: label})
	hasDefault := false
	var caseBodies []*Block
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock("switch.case")
		caseBodies = append(caseBodies, cb)
		if dispatch != nil {
			b.edge(dispatch, cb, EdgeNext)
		}
	}
	for i, cc := range clauses {
		b.cur = caseBodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(caseBodies) && b.cur != nil {
					b.edge(b.cur, caseBodies[i+1], EdgeNext)
					fellThrough = true
				}
				b.cur = nil
				continue
			}
			b.stmt(st)
		}
		if b.cur != nil && !fellThrough {
			b.edge(b.cur, after, EdgeNext)
		}
	}
	if !hasDefault && dispatch != nil {
		b.edge(dispatch, after, EdgeNext)
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(ls *loopScope) { b.loops = append(b.loops, ls) }
func (b *cfgBuilder) popLoop()               { b.loops = b.loops[:len(b.loops)-1] }

// takeLabel consumes the label attached to the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break/continue target. needContinue skips scopes that
// cannot be continued (switch/select).
func (b *cfgBuilder) findLoop(label *ast.Ident, needContinue bool) *loopScope {
	for i := len(b.loops) - 1; i >= 0; i-- {
		ls := b.loops[i]
		if needContinue && ls.continueTo == nil {
			continue
		}
		if label == nil || ls.label == label.Name {
			return ls
		}
	}
	return nil
}

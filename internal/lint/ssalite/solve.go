package ssalite

import "go/ast"

// Fact is an analyzer-defined abstract state. The solver treats facts as
// immutable values: Transfer and Branch must return fresh facts (or the
// input unchanged), never mutate a fact they were handed — block inputs are
// re-used across iterations.
type Fact any

// Flow defines one forward dataflow problem over a Func's CFG.
type Flow struct {
	// Entry produces the fact at function entry.
	Entry func() Fact
	// Transfer applies the effect of node n (Block.Nodes[idx]) to f.
	Transfer func(b *Block, idx int, n ast.Node, f Fact) Fact
	// Branch, if non-nil, refines the block's outgoing fact along edge e —
	// the hook for branch sensitivity (e.g. "TryReserve returned true" on
	// the EdgeTrue side of a condition). b.Ctrl names the decision.
	Branch func(b *Block, e Edge, f Fact) Fact
	// Join merges src into dst (dst may be nil = unreached) and reports
	// whether the result differs from dst. Must be monotone: repeated joins
	// reach a fixpoint.
	Join func(dst, src Fact) (Fact, bool)
}

// Solve runs the worklist algorithm and returns the fact at entry to each
// reached block. Blocks never reached have no map entry. The iteration
// order is deterministic (blocks are processed in index order via a FIFO
// seeded at Entry), so diagnostics derived from the result are stable.
func (f *Func) Solve(fl Flow) map[*Block]Fact {
	in := map[*Block]Fact{f.Entry: fl.Entry()}
	queued := make([]bool, len(f.Blocks))
	queue := []*Block{f.Entry}
	queued[f.Entry.Index] = true
	for steps := 0; len(queue) > 0; steps++ {
		if steps > 64*len(f.Blocks)*(len(f.Blocks)+2) {
			// Non-converging transfer (analyzer bug): stop rather than hang.
			break
		}
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false
		out := in[b]
		for idx, n := range b.Nodes {
			out = fl.Transfer(b, idx, n, out)
		}
		for _, e := range b.Succs {
			eo := out
			if fl.Branch != nil {
				eo = fl.Branch(b, e, out)
			}
			merged, changed := fl.Join(in[e.To], eo)
			if changed {
				in[e.To] = merged
				if !queued[e.To.Index] {
					queued[e.To.Index] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	return in
}

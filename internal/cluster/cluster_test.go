package cluster

import (
	"testing"
	"time"

	"rpcoib/internal/bufpool"
	"rpcoib/internal/exec"
	"rpcoib/internal/perfmodel"
	"rpcoib/internal/transport"
)

func TestPresets(t *testing.T) {
	a := ClusterA(0)
	if a.Nodes != 65 || a.CoresPerNode != 8 {
		t.Fatalf("cluster A: %+v", a)
	}
	b := ClusterB()
	if b.Nodes != 9 {
		t.Fatalf("cluster B: %+v", b)
	}
}

func TestWorkContendsForCores(t *testing.T) {
	c := New(Config{Nodes: 1, CoresPerNode: 2, Seed: 1})
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		c.SpawnOn(0, "w", func(e exec.Env) {
			e.Work(10 * time.Millisecond)
			finish = append(finish, e.Now())
		})
	}
	c.Run()
	if len(finish) != 4 {
		t.Fatalf("finish=%v", finish)
	}
	// 4 x 10ms of CPU on 2 cores takes 20ms.
	if finish[3] != 20*time.Millisecond {
		t.Fatalf("last finished at %v, want 20ms", finish[3])
	}
}

func TestWorkOnDifferentNodesIsIndependent(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 1, Seed: 1})
	var f0, f1 time.Duration
	c.SpawnOn(0, "w0", func(e exec.Env) { e.Work(10 * time.Millisecond); f0 = e.Now() })
	c.SpawnOn(1, "w1", func(e exec.Env) { e.Work(10 * time.Millisecond); f1 = e.Now() })
	c.Run()
	if f0 != 10*time.Millisecond || f1 != 10*time.Millisecond {
		t.Fatalf("f0=%v f1=%v", f0, f1)
	}
}

func TestDiskSerializesAndCounts(t *testing.T) {
	cfg := Config{Nodes: 1, Seed: 1, DiskReadBW: 100e6, DiskWriteBW: 100e6, DiskSeek: time.Millisecond}
	c := New(cfg)
	var done time.Duration
	c.SpawnOn(0, "a", func(e exec.Env) {
		se := e.(*SimEnv)
		se.node.Disk.Write(se.p, 100_000_000) // 1s + 1ms seek
	})
	c.SpawnOn(0, "b", func(e exec.Env) {
		se := e.(*SimEnv)
		se.node.Disk.Read(se.p, 100_000_000)
		done = e.Now()
	})
	c.Run()
	want := 2*time.Second + 2*time.Millisecond
	if done != want {
		t.Fatalf("done=%v want=%v", done, want)
	}
	d := c.Node(0).Disk
	if d.BytesRead != 100_000_000 || d.BytesWritten != 100_000_000 {
		t.Fatalf("disk counters %d %d", d.BytesRead, d.BytesWritten)
	}
}

func TestSocketNetEcho(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 1})
	var reply string
	serverNet := c.SocketNet(perfmodel.IPoIB, 0)
	clientNet := c.SocketNet(perfmodel.IPoIB, 1)
	c.SpawnOn(0, "server", func(e exec.Env) {
		ln, err := serverNet.Listen(e, 9000)
		if err != nil {
			t.Error(err)
			return
		}
		conn, err := ln.Accept(e)
		if err != nil {
			t.Error(err)
			return
		}
		data, release, err := conn.Recv(e)
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(e, append([]byte("re:"), data...))
		release()
	})
	c.SpawnOn(1, "client", func(e exec.Env) {
		e.Sleep(time.Millisecond) // let the server listen
		conn, err := clientNet.Dial(e, "node0:9000")
		if err != nil {
			t.Error(err)
			return
		}
		conn.Send(e, []byte("hi"))
		data, release, err := conn.Recv(e)
		if err != nil {
			t.Error(err)
			return
		}
		reply = string(data)
		release()
	})
	c.Run()
	if reply != "re:hi" {
		t.Fatalf("reply=%q", reply)
	}
}

func TestRPCoIBNetBootstrapAndZeroCopy(t *testing.T) {
	c := New(Config{Nodes: 2, Seed: 1})
	var got []byte
	var kind string
	c.SpawnOn(0, "server", func(e exec.Env) {
		ln, err := c.RPCoIBNet(0).Listen(e, 9000)
		if err != nil {
			t.Error(err)
			return
		}
		conn, err := ln.Accept(e)
		if err != nil {
			t.Error(err)
			return
		}
		data, release, err := conn.Recv(e)
		if err != nil {
			t.Error(err)
			return
		}
		got = append([]byte(nil), data...)
		release()
		conn.Send(e, []byte("ok"))
	})
	c.SpawnOn(1, "client", func(e exec.Env) {
		e.Sleep(time.Millisecond)
		net := c.RPCoIBNet(1)
		kind = net.Kind()
		conn, err := net.Dial(e, "node0:9000")
		if err != nil {
			t.Error(err)
			return
		}
		ps, ok := conn.(transport.PooledSender)
		if !ok {
			t.Error("IB conn must implement PooledSender")
			return
		}
		pool := bufpool.NewNativePool(0)
		b := pool.Get(64)
		copy(b.Data, "zero-copy payload")
		if err := ps.SendPooled(e, b, 17); err != nil {
			t.Error(err)
			return
		}
		pool.Put(b)
		if _, release, err := conn.Recv(e); err != nil {
			t.Error(err)
		} else {
			release()
		}
	})
	c.Run()
	if string(got) != "zero-copy payload" {
		t.Fatalf("got=%q", got)
	}
	if kind != "RPCoIB" {
		t.Fatalf("kind=%q", kind)
	}
}

func TestIBFasterThanIPoIBSmallMessages(t *testing.T) {
	// One-way small-message time over verbs must beat IPoIB sockets — the
	// core premise of the paper.
	measure := func(useIB bool) time.Duration {
		c := New(Config{Nodes: 2, Seed: 1})
		var elapsed time.Duration
		c.SpawnOn(0, "server", func(e exec.Env) {
			var ln transport.Listener
			var err error
			if useIB {
				ln, err = c.RPCoIBNet(0).Listen(e, 9000)
			} else {
				ln, err = c.SocketNet(perfmodel.IPoIB, 0).Listen(e, 9000)
			}
			if err != nil {
				t.Error(err)
				return
			}
			conn, err := ln.Accept(e)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				data, release, err := conn.Recv(e)
				if err != nil {
					return
				}
				conn.Send(e, data[:1])
				release()
			}
		})
		c.SpawnOn(1, "client", func(e exec.Env) {
			e.Sleep(time.Millisecond)
			var conn transport.Conn
			var err error
			if useIB {
				conn, err = c.RPCoIBNet(1).Dial(e, "node0:9000")
			} else {
				conn, err = c.SocketNet(perfmodel.IPoIB, 1).Dial(e, "node0:9000")
			}
			if err != nil {
				t.Error(err)
				return
			}
			start := e.Now()
			const iters = 100
			for i := 0; i < iters; i++ {
				conn.Send(e, []byte{1, 2, 3, 4})
				_, release, err := conn.Recv(e)
				if err != nil {
					t.Error(err)
					return
				}
				release()
			}
			elapsed = (e.Now() - start) / iters
			conn.Close()
		})
		c.Run()
		return elapsed
	}
	ib, ipoib := measure(true), measure(false)
	if ib >= ipoib {
		t.Fatalf("IB RTT %v not faster than IPoIB RTT %v", ib, ipoib)
	}
	if ipoib < 3*ib {
		t.Logf("note: IB %v vs IPoIB %v (ratio %.1fx)", ib, ipoib, float64(ipoib)/float64(ib))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() time.Duration {
		c := New(Config{Nodes: 4, Seed: 99})
		for n := 0; n < 4; n++ {
			n := n
			c.SpawnOn(n, "w", func(e exec.Env) {
				for i := 0; i < 10; i++ {
					e.Work(time.Duration(e.Rand().Intn(1000)) * time.Microsecond)
					e.Sleep(time.Duration(n) * time.Microsecond)
				}
			})
		}
		return c.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

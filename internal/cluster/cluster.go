// Package cluster assembles the simulated testbed: nodes with CPU cores and
// disks, the interconnect fabrics (1GigE / 10GigE / IPoIB / native IB over
// the same hosts, like the paper's multi-rail clusters), the exec.Env
// implementation that runs unmodified engine code inside the simulator, and
// transport.Network adapters over netsim sockets and ibverbs endpoints.
//
// Preset topologies mirror the paper: Cluster A (65 nodes, 8 cores, IB QDR +
// 1GigE) and Cluster B (9 nodes, additionally 10GigE).
package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"rpcoib/internal/exec"
	"rpcoib/internal/ibverbs"
	"rpcoib/internal/netsim"
	"rpcoib/internal/perfmodel"
	"rpcoib/internal/sim"
)

// Config sizes a simulated cluster.
type Config struct {
	// Nodes is the number of hosts.
	Nodes int
	// CoresPerNode models the dual quad-core Xeons of the paper's testbed.
	CoresPerNode int
	// DiskReadBW and DiskWriteBW are sequential HDD bandwidths (bytes/s).
	DiskReadBW  float64
	DiskWriteBW float64
	// DiskSeek is the per-operation positioning cost.
	DiskSeek time.Duration
	// Seed drives all simulation randomness.
	Seed int64
	// Shards is the shard count for the sharded kernel (see NewSharded);
	// the single-kernel New ignores it. <= 0 means one shard.
	Shards int
	// RDMAThreshold is the verbs eager/RDMA crossover (0 = default).
	RDMAThreshold int
	// ConnectTimeout bounds connect handshakes on every fabric (socket SYN
	// exchange and verbs QP bootstrap alike). 0 takes the
	// RPCOIB_CONNECT_TIMEOUT environment variable if set (a Go duration,
	// e.g. "400ms"), else DefaultConnectTimeout — far below the real ipc
	// 20 s so fault runs don't burn minutes of virtual time per dead dial.
	ConnectTimeout time.Duration
	// QPMuxPerPeer, when > 0, multiplexes RPCoIB connections over at most
	// this many physical QPs per <client node, server address> pair: logical
	// streams carry a stream id in the wire framing and attach to existing
	// QPs without a verbs handshake (DESIGN.md S23). 0 keeps the historical
	// dedicated-QP-per-connection behavior the paper measures.
	QPMuxPerPeer int
	// SRQDepth, when > 0, gives every device a shared receive queue of this
	// many posted WQEs instead of unbounded per-endpoint posted recvs;
	// arrivals that find it exhausted are RNR-delayed. SRQCreditPerQP caps
	// WQEs held per endpoint (0 = no per-endpoint cap).
	SRQDepth       int
	SRQCreditPerQP int
	// Topology lays nodes out over racks and gives each node Topology.IBRails
	// independent native-IB rails, each a full fabric + verbs network of its
	// own. The zero value is SingleRailTopology: one rail, byte-identical
	// with pre-topology clusters.
	Topology Topology
}

// DefaultConnectTimeout is the simulated clusters' connect timeout when
// neither Config.ConnectTimeout nor RPCOIB_CONNECT_TIMEOUT is set.
const DefaultConnectTimeout = 5 * time.Second

// ConnectTimeoutEnv names the environment override for Config.ConnectTimeout.
const ConnectTimeoutEnv = "RPCOIB_CONNECT_TIMEOUT"

// ClusterA returns the paper's 65-node QDR cluster (Intel Westmere, 8 cores,
// 12 GB RAM, one HDD per node).
func ClusterA(nodes int) Config {
	if nodes <= 0 {
		nodes = 65
	}
	return Config{
		Nodes:        nodes,
		CoresPerNode: 8,
		DiskReadBW:   110e6,
		DiskWriteBW:  95e6,
		DiskSeek:     6 * time.Millisecond,
		Seed:         1,
	}
}

// ClusterB returns the paper's 9-node cluster that also has 10GigE.
func ClusterB() Config { c := ClusterA(9); return c }

// Cluster is a running simulated testbed.
type Cluster struct {
	Sim    *sim.Sim
	Costs  *perfmodel.CPUCosts
	Config Config

	nodes   []*Node
	fabrics map[perfmodel.LinkKind]*netsim.Fabric

	// Per-rail native IB: rail i is ibFabrics[i]/ibnets[i] (and ibmuxes[i]
	// under QP muxing). Rail 0 doubles as fabrics[perfmodel.NativeIB], so
	// single-rail code paths see exactly the historical layout.
	ibFabrics []*netsim.Fabric
	ibnets    []*ibverbs.Network
	ibmuxes   []*ibverbs.Mux // per rail, non-nil entries when QPMuxPerPeer > 0
}

// Node is one simulated host.
type Node struct {
	ID   int
	CPU  *sim.Resource
	Disk *Disk
}

// New builds a cluster from cfg.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	if cfg.CoresPerNode < 1 {
		cfg.CoresPerNode = 8
	}
	s := sim.New(cfg.Seed)
	c := &Cluster{
		Sim:     s,
		Costs:   perfmodel.DefaultCPU(),
		Config:  cfg,
		fabrics: map[perfmodel.LinkKind]*netsim.Fabric{},
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{ID: i, CPU: s.NewResource(int64(cfg.CoresPerNode))}
		n.Disk = &Disk{
			r: s.NewResource(1), readBW: cfg.DiskReadBW,
			writeBW: cfg.DiskWriteBW, seek: cfg.DiskSeek,
		}
		c.nodes = append(c.nodes, n)
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = DefaultConnectTimeout
		if v := os.Getenv(ConnectTimeoutEnv); v != "" {
			if d, err := time.ParseDuration(v); err == nil && d > 0 {
				cfg.ConnectTimeout = d
			}
		}
	}
	cfg.Topology = cfg.Topology.withDefaults()
	c.Config = cfg
	cpuOf := func(node int) *sim.Resource { return c.nodes[node].CPU }
	for _, kind := range []perfmodel.LinkKind{perfmodel.OneGigE, perfmodel.TenGigE, perfmodel.IPoIB, perfmodel.NativeIB} {
		c.fabrics[kind] = netsim.NewFabric(s, perfmodel.Link(kind), cpuOf)
		c.fabrics[kind].SetConnectTimeout(cfg.ConnectTimeout)
	}
	// One fabric + verbs network per IB rail. Rail 0 is the NativeIB fabric
	// built above, so single-rail clusters are laid out exactly as before.
	for rail := 0; rail < cfg.Topology.IBRails; rail++ {
		f := c.fabrics[perfmodel.NativeIB]
		if rail > 0 {
			f = netsim.NewFabric(s, perfmodel.Link(perfmodel.NativeIB), cpuOf)
			f.SetConnectTimeout(cfg.ConnectTimeout)
		}
		net := ibverbs.NewNetwork(f, c.Costs, cfg.RDMAThreshold)
		if cfg.SRQDepth > 0 {
			net.SetSRQ(cfg.SRQDepth, cfg.SRQCreditPerQP)
		}
		var mux *ibverbs.Mux
		if cfg.QPMuxPerPeer > 0 {
			mux = ibverbs.NewMux(net, cfg.QPMuxPerPeer)
		}
		c.ibFabrics = append(c.ibFabrics, f)
		c.ibnets = append(c.ibnets, net)
		c.ibmuxes = append(c.ibmuxes, mux)
	}
	return c
}

// IBMux returns rail 0's QP multiplexer, nil unless Config.QPMuxPerPeer > 0.
func (c *Cluster) IBMux() *ibverbs.Mux { return c.ibmuxes[0] }

// Topology returns the cluster's (defaulted) physical layout.
func (c *Cluster) Topology() Topology { return c.Config.Topology }

// IBRails returns the native-IB rail count (>= 1).
func (c *Cluster) IBRails() int { return len(c.ibFabrics) }

// IBRailFabric returns rail i's fabric (panics on bad rails, like Node).
func (c *Cluster) IBRailFabric(rail int) *netsim.Fabric {
	if rail < 0 || rail >= len(c.ibFabrics) {
		panic(fmt.Sprintf("cluster: no IB rail %d (have %d)", rail, len(c.ibFabrics)))
	}
	return c.ibFabrics[rail]
}

// IBRailNet returns rail i's verbs network.
func (c *Cluster) IBRailNet(rail int) *ibverbs.Network {
	c.IBRailFabric(rail) // bounds check
	return c.ibnets[rail]
}

// Node returns host id (panics on bad ids to catch wiring mistakes).
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: no node %d", id))
	}
	return c.nodes[id]
}

// Nodes returns the host count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Fabric returns the fabric for a link kind.
func (c *Cluster) Fabric(kind perfmodel.LinkKind) *netsim.Fabric { return c.fabrics[kind] }

// IBNet returns rail 0's verbs network (the only one on single-rail
// clusters).
func (c *Cluster) IBNet() *ibverbs.Network { return c.ibnets[0] }

// IBNets returns every rail's verbs network in rail order.
func (c *Cluster) IBNets() []*ibverbs.Network {
	return append([]*ibverbs.Network(nil), c.ibnets...)
}

// Fabrics returns every interconnect fabric in a fixed order: the three
// socket fabrics, then every IB rail in rail order. Fault injection applies
// link events and transfer hooks across all of them, just as PartitionNode
// partitions a node on every rail.
func (c *Cluster) Fabrics() []*netsim.Fabric {
	kinds := []perfmodel.LinkKind{perfmodel.OneGigE, perfmodel.TenGigE, perfmodel.IPoIB}
	out := make([]*netsim.Fabric, 0, len(kinds)+len(c.ibFabrics))
	for _, kind := range kinds {
		out = append(out, c.fabrics[kind])
	}
	return append(out, c.ibFabrics...)
}

// FabricsByName resolves a fault-plan fabric name to the fabric instances it
// addresses: a socket kind name ("1GigE", "10GigE", "IPoIB") names that one
// fabric, "IB" names every IB rail together (a cable-bundle pull), and
// "IB/<rail>" names one rail instance. Unknown names and out-of-range rails
// are errors, so a typo'd plan fails loudly instead of matching nothing.
func (c *Cluster) FabricsByName(name string) ([]*netsim.Fabric, error) {
	switch name {
	case "1GigE":
		return []*netsim.Fabric{c.fabrics[perfmodel.OneGigE]}, nil
	case "10GigE":
		return []*netsim.Fabric{c.fabrics[perfmodel.TenGigE]}, nil
	case "IPoIB":
		return []*netsim.Fabric{c.fabrics[perfmodel.IPoIB]}, nil
	case "IB":
		return append([]*netsim.Fabric(nil), c.ibFabrics...), nil
	}
	var rail int
	if n, err := fmt.Sscanf(name, "IB/%d", &rail); n == 1 && err == nil && rail >= 0 {
		if rail >= len(c.ibFabrics) {
			return nil, fmt.Errorf("cluster: unknown rail %q (cluster has %d IB rail(s))", name, len(c.ibFabrics))
		}
		return []*netsim.Fabric{c.ibFabrics[rail]}, nil
	}
	return nil, fmt.Errorf("cluster: unknown fabric %q (want 1GigE, 10GigE, IPoIB, IB, or IB/<rail>)", name)
}

// PartitionNode drops (or restores) all fabric traffic to and from a node,
// on every socket fabric and every IB rail, for failure-injection
// experiments.
func (c *Cluster) PartitionNode(node int, down bool) {
	c.Node(node)
	for _, f := range c.Fabrics() {
		f.SetNodeDown(node, down)
	}
}

// SpawnOn starts fn as a process on node (its Work and stack CPU contend for
// that node's cores).
func (c *Cluster) SpawnOn(node int, name string, fn func(exec.Env)) {
	n := c.Node(node)
	c.Sim.Spawn(name, func(p *sim.Proc) {
		fn(&SimEnv{c: c, node: n, p: p})
	})
}

// Run drives the simulation to completion and returns the final virtual time.
func (c *Cluster) Run() time.Duration { return c.Sim.Run() }

// RunUntil drives the simulation to a horizon.
func (c *Cluster) RunUntil(d time.Duration) time.Duration { return c.Sim.RunUntil(d) }

// Disk models one HDD with serialized access. Streaming APIs charge the
// positioning cost only when the head moves between streams, so N
// interleaved sequential writers degrade realistically instead of paying a
// full seek per packet.
type Disk struct {
	r          *sim.Resource
	readBW     float64
	writeBW    float64
	seek       time.Duration
	lastStream int64

	BytesRead    int64
	BytesWritten int64
	Seeks        int64
}

func (d *Disk) xfer(p *sim.Proc, stream, bytes int64, bw float64) {
	dur := time.Duration(float64(bytes) / bw * float64(time.Second))
	if stream == 0 || stream != d.lastStream {
		dur += d.seek
		d.Seeks++
		d.lastStream = stream
	}
	d.r.Use(p, dur)
}

// Read occupies the disk for a positioned read of the given size.
func (d *Disk) Read(p *sim.Proc, bytes int64) {
	d.xfer(p, 0, bytes, d.readBW)
	d.BytesRead += bytes
}

// Write occupies the disk for a positioned write of the given size.
func (d *Disk) Write(p *sim.Proc, bytes int64) {
	d.xfer(p, 0, bytes, d.writeBW)
	d.BytesWritten += bytes
}

// ReadStream reads bytes as part of the sequential stream id (non-zero);
// the seek is charged only when the head switches streams.
func (d *Disk) ReadStream(p *sim.Proc, stream, bytes int64) {
	d.xfer(p, stream, bytes, d.readBW)
	d.BytesRead += bytes
}

// WriteStream writes bytes as part of the sequential stream id (non-zero).
func (d *Disk) WriteStream(p *sim.Proc, stream, bytes int64) {
	d.xfer(p, stream, bytes, d.writeBW)
	d.BytesWritten += bytes
}

// SimEnv is the simulator-backed exec.Env: one per process, bound to a node.
type SimEnv struct {
	c    *Cluster
	node *Node
	p    *sim.Proc
}

// Proc exposes the underlying sim process for transport glue.
func (e *SimEnv) Proc() *sim.Proc { return e.p }

// NodeID returns the node this process runs on.
func (e *SimEnv) NodeID() int { return e.node.ID }

// Cluster returns the owning cluster.
func (e *SimEnv) Cluster() *Cluster { return e.c }

// Now implements exec.Env.
func (e *SimEnv) Now() time.Duration { return e.p.Now() }

// Sleep implements exec.Env.
func (e *SimEnv) Sleep(d time.Duration) { e.p.Sleep(d) }

// Work implements exec.Env: occupy one of the node's cores for d.
func (e *SimEnv) Work(d time.Duration) {
	if d > 0 {
		e.node.CPU.Use(e.p, d)
	}
}

// Spawn implements exec.Env: the child runs on the same node.
func (e *SimEnv) Spawn(name string, fn func(exec.Env)) {
	e.c.SpawnOn(e.node.ID, name, fn)
}

// NewQueue implements exec.Env.
func (e *SimEnv) NewQueue(capacity int) exec.Queue {
	return simQueue{q: e.c.Sim.NewQueue(capacity)}
}

// Rand implements exec.Env: the cluster-wide deterministic source.
func (e *SimEnv) Rand() *rand.Rand { return e.c.Sim.Rand() }

// simQueue adapts sim.Queue to exec.Queue by unwrapping the caller's env.
type simQueue struct{ q *sim.Queue }

// SimEnvOf recovers the concrete SimEnv beneath e, unwrapping decorator envs
// (deadline- or trace-carrying wrappers) via their BaseEnv method. It panics
// when e does not bottom out at a SimEnv: simulator resources (queues, disks)
// can only be used from simulated processes.
func SimEnvOf(e exec.Env) *SimEnv {
	for {
		switch v := e.(type) {
		case *SimEnv:
			return v
		case interface{ BaseEnv() exec.Env }:
			e = v.BaseEnv()
		default:
			panic("cluster: exec.Env is not a SimEnv; queues must be used from simulated processes")
		}
	}
}

// procOf recovers the sim process beneath any simulator-backed env (SimEnv or
// the sharded ShardEnv), unwrapping decorators via BaseEnv.
func procOf(e exec.Env) *sim.Proc {
	for {
		switch v := e.(type) {
		case interface{ Proc() *sim.Proc }:
			return v.Proc()
		case interface{ BaseEnv() exec.Env }:
			e = v.BaseEnv()
		default:
			panic("cluster: exec.Env is not simulator-backed; queues must be used from simulated processes")
		}
	}
}

// ProcOf is the exported procOf, for transport glue outside this package.
func ProcOf(e exec.Env) *sim.Proc { return procOf(e) }

func (s simQueue) Put(e exec.Env, v any) bool { return s.q.Put(procOf(e), v) }
func (s simQueue) TryPut(v any) bool          { return s.q.TryPut(v) }
func (s simQueue) Get(e exec.Env) (any, bool) { return s.q.Get(procOf(e)) }
func (s simQueue) TryGet() (any, bool)        { return s.q.TryGet() }
func (s simQueue) GetTimeout(e exec.Env, d time.Duration) (any, bool, bool) {
	return s.q.GetTimeout(procOf(e), d)
}
func (s simQueue) Close()   { s.q.Close() }
func (s simQueue) Len() int { return s.q.Len() }

package cluster

import (
	"errors"
	"time"

	"rpcoib/internal/bufpool"
	"rpcoib/internal/exec"
	"rpcoib/internal/ibverbs"
	"rpcoib/internal/netsim"
	"rpcoib/internal/perfmodel"
	"rpcoib/internal/sim"
	"rpcoib/internal/transport"
)

// verbsEP is the endpoint surface ibConn rides: either a dedicated
// ibverbs.EndPoint (the paper's QP-per-connection design) or a logical
// ibverbs.MuxEndpoint stream sharing a bounded physical QP set
// (Config.QPMuxPerPeer, DESIGN.md S23).
type verbsEP interface {
	Send(p *sim.Proc, b *bufpool.Buffer, n int) error
	SendSized(p *sim.Proc, b *bufpool.Buffer, n, size int) error
	Recv(p *sim.Proc) ([]byte, func(), error)
	WireTime(n int) time.Duration
	Close()
	RemoteAddr() string
}

// SocketNet returns a node-bound transport.Network over one of the TCP-like
// fabrics (1GigE, 10GigE, or IPoIB).
func (c *Cluster) SocketNet(kind perfmodel.LinkKind, node int) transport.Network {
	if kind == perfmodel.NativeIB {
		panic("cluster: use RPCoIBNet for the native IB transport")
	}
	c.Node(node) // validate
	return &sockNet{c: c, fabric: c.fabrics[kind], node: node, kind: kind.String()}
}

type sockNet struct {
	c      *Cluster
	fabric *netsim.Fabric
	node   int
	kind   string
}

func (n *sockNet) Kind() string { return n.kind }

func (n *sockNet) Listen(_ exec.Env, port int) (transport.Listener, error) {
	l, err := n.fabric.Listen(n.node, port)
	if err != nil {
		return nil, err
	}
	return &sockListener{l: l}, nil
}

func (n *sockNet) Dial(e exec.Env, addr string) (transport.Conn, error) {
	conn, err := n.fabric.Dial(procOf(e), n.node, addr)
	if err != nil {
		return nil, err
	}
	return &sockConn{c: conn}, nil
}

type sockListener struct{ l *netsim.Listener }

func (l *sockListener) Accept(e exec.Env) (transport.Conn, error) {
	conn, err := l.l.Accept(procOf(e))
	if err != nil {
		return nil, err
	}
	return &sockConn{c: conn}, nil
}

func (l *sockListener) Close()       { l.l.Close() }
func (l *sockListener) Addr() string { return l.l.Addr() }

type sockConn struct{ c *netsim.SocketConn }

var _ transport.SizedSender = (*sockConn)(nil)

func (c *sockConn) Send(e exec.Env, data []byte) error { return c.c.Send(procOf(e), data) }

func (c *sockConn) SendSized(e exec.Env, data []byte, size int) error {
	return c.c.SendSized(procOf(e), data, size)
}

func (c *sockConn) Recv(e exec.Env) ([]byte, func(), error) {
	data, err := c.c.Recv(procOf(e))
	if err != nil {
		return nil, nil, err
	}
	return data, transport.NopRelease, nil
}

func (c *sockConn) WireTime(n int) time.Duration { return c.c.WireTime(n) }

func (c *sockConn) Close()             { c.c.Close() }
func (c *sockConn) RemoteAddr() string { return c.c.RemoteAddr() }

// RPCoIBNet returns the native-IB transport for node. Connection setup
// follows the paper's bootstrap: the client dials the server's socket
// address (over IPoIB), exchanges endpoint information there, and then all
// communication flows over verbs. The returned conns implement
// transport.PooledSender for zero-copy sends from registered buffers.
func (c *Cluster) RPCoIBNet(node int) transport.Network {
	c.Node(node)
	return &ibNet{c: c, node: node}
}

// epInfoBytes sizes the QP/LID/rkey exchange blob.
var epInfoBytes = make([]byte, 72)

// fallbackHello is the bootstrap-channel greeting a client sends when it
// wants the IPoIB socket itself as the transport (circuit-breaker failover)
// rather than a verbs endpoint exchange. Its length differs from
// epInfoBytes, which is how the listener tells the two apart.
var fallbackHello = []byte("RPCOIB-FALLBACK1")

var errListenerClosed = errors.New("cluster: listener closed")

type ibNet struct {
	c    *Cluster
	node int
}

func (n *ibNet) Kind() string { return "RPCoIB" }

// Rails implements transport.RailDialer: the number of independent IB rails
// this node can dial over.
func (n *ibNet) Rails() int { return n.c.IBRails() }

// RailUp implements transport.RailDialer: whether the node's local port on
// the rail reports active — the IBV_PORT_ACTIVE state a real multi-rail
// dialer consults before posting to an HCA. A rail outage downs every port
// on the rail, so this is the locally observable face of it; a remote-side
// or switch failure is not visible here and is discovered by dialing.
func (n *ibNet) RailUp(rail int) bool {
	return !n.c.IBRailFabric(rail).NodeDown(n.node)
}

// PreferredRail implements transport.RailDialer: the topology's affinity
// rail for traffic from this node to addr (rack-local flows ride the rack's
// home rail). Unparseable addresses get rail 0.
func (n *ibNet) PreferredRail(addr string) int {
	dst, _, err := netsim.ParseAddr(addr)
	if err != nil {
		return 0
	}
	return n.c.Topology().PreferredRail(n.node, dst)
}

func (n *ibNet) Listen(e exec.Env, port int) (transport.Listener, error) {
	sockLn, err := n.c.fabrics[perfmodel.IPoIB].Listen(n.node, port)
	if err != nil {
		return nil, err
	}
	l := &ibListener{c: n.c, sockLn: sockLn, ready: e.NewQueue(0)}
	// One verbs listener (and accept loop) per rail: a dial on rail i lands
	// on rail i's EPListener, so the server side needs no rail negotiation.
	for rail := 0; rail < n.c.IBRails(); rail++ {
		ibLn, err := n.c.ibnets[rail].Listen(n.node, port)
		if err != nil {
			sockLn.Close()
			for _, prev := range l.ibLns {
				prev.Close()
			}
			return nil, err
		}
		l.ibLns = append(l.ibLns, ibLn)
		var muxLn *ibverbs.MuxListener
		if n.c.ibmuxes[rail] != nil {
			muxLn = n.c.ibmuxes[rail].NewListener(ibLn)
		}
		l.muxLns = append(l.muxLns, muxLn)
	}
	e.Spawn("rpcoib-bootstrap:"+sockLn.Addr(), l.bootstrapLoop)
	for rail := range l.ibLns {
		r := rail
		e.Spawn("rpcoib-accept:"+sockLn.Addr(), func(ae exec.Env) { l.ibAcceptLoop(ae, r) })
	}
	return l, nil
}

// DialFallback opens a plain IPoIB socket connection to the RPCoIB listener
// at addr, announced by the fallbackHello greeting on the bootstrap channel.
// The circuit breaker in internal/core uses it to keep calls flowing while
// the verbs path is down. Implements transport.FallbackDialer.
func (n *ibNet) DialFallback(e exec.Env, addr string) (transport.Conn, error) {
	p := procOf(e)
	sc, err := n.c.fabrics[perfmodel.IPoIB].Dial(p, n.node, addr)
	if err != nil {
		return nil, err
	}
	if err := sc.Send(p, fallbackHello); err != nil {
		sc.Close()
		return nil, err
	}
	if _, err := sc.Recv(p); err != nil { // server ack
		sc.Close()
		return nil, err
	}
	return &sockConn{c: sc}, nil
}

var _ transport.FallbackDialer = (*ibNet)(nil)

// DialRail implements transport.RailDialer: the full RPCoIB bootstrap
// (endpoint exchange over IPoIB, then the verbs handshake) pinned to exactly
// one rail. It never fails over internally — a dead rail is the caller's
// signal — so the rail selector in internal/core gets clean per-rail failure
// attribution.
func (n *ibNet) DialRail(e exec.Env, addr string, rail int) (transport.Conn, error) {
	n.c.IBRailFabric(rail) // bounds check
	p := procOf(e)
	sc, err := n.c.fabrics[perfmodel.IPoIB].Dial(p, n.node, addr)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if err := sc.Send(p, epInfoBytes); err != nil {
		return nil, err
	}
	if _, err := sc.Recv(p); err != nil { // server's endpoint info / ack
		return nil, err
	}
	var ep verbsEP
	if mux := n.c.ibmuxes[rail]; mux != nil {
		// Muxed path: attach a logical stream; only the first QPMuxPerPeer
		// dials to this address pay the verbs QP handshake.
		ep, err = mux.Dial(p, n.node, addr)
	} else {
		ep, err = n.c.ibnets[rail].Dial(p, n.node, addr)
	}
	if err != nil {
		return nil, err
	}
	return &ibConn{c: n.c, ep: ep, dev: n.c.ibnets[rail].Device(n.node)}, nil
}

var _ transport.RailDialer = (*ibNet)(nil)

// Dial connects over the first reachable rail: the topology-preferred rail
// first, then the rest in ascending order, skipping rails whose local port
// is down (a dead-rail dial would burn a full connect timeout). Raw data
// paths (the HDFS block pipeline, shuffle fetches) get rail survivability
// from this loop; the RPC layer instead drives DialRail through its per-peer
// rail selector for affinity, health memory, and failover metrics.
func (n *ibNet) Dial(e exec.Env, addr string) (transport.Conn, error) {
	rails := n.railOrder(addr)
	var lastErr error
	for _, rail := range rails {
		c, err := n.DialRail(e, addr, rail)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// railOrder returns the dial preference order for addr: the preferred rail,
// then the others ascending, with dead-local-port rails moved to the back
// (still tried last, in case every port is down and the caller wants the
// true error).
func (n *ibNet) railOrder(addr string) []int {
	rails := n.Rails()
	if rails == 1 {
		return []int{0}
	}
	pref := n.PreferredRail(addr)
	up := make([]int, 0, rails)
	down := make([]int, 0, rails)
	add := func(r int) {
		if n.RailUp(r) {
			up = append(up, r)
		} else {
			down = append(down, r)
		}
	}
	add(pref)
	for r := 0; r < rails; r++ {
		if r != pref {
			add(r)
		}
	}
	return append(up, down...)
}

type ibListener struct {
	c      *Cluster
	sockLn *netsim.Listener
	ibLns  []*ibverbs.EPListener  // one verbs listener per rail
	muxLns []*ibverbs.MuxListener // per rail, non-nil entries when muxing is on
	ready  exec.Queue // accepted transport.Conns (verbs and fallback sockets)
}

// bootstrapLoop accepts connections on the IPoIB bootstrap channel. Each one
// is either a verbs endpoint exchange (epInfoBytes greeting; the socket is
// closed once the exchange completes and the verbs endpoint arrives through
// ibAcceptLoop) or a fallback transport request (fallbackHello greeting; the
// socket itself becomes the connection). Handshakes run in their own procs
// so a slow or dead client cannot block other accepts.
func (l *ibListener) bootstrapLoop(e exec.Env) {
	for {
		sc, err := l.sockLn.Accept(procOf(e))
		if err != nil {
			return
		}
		e.Spawn("rpcoib-handshake:"+sc.RemoteAddr(), func(he exec.Env) {
			l.handshake(he, sc)
		})
	}
}

func (l *ibListener) handshake(e exec.Env, sc *netsim.SocketConn) {
	p := procOf(e)
	hello, err := sc.Recv(p)
	if err != nil {
		sc.Close()
		return
	}
	if len(hello) == len(fallbackHello) {
		// Fallback transport: ack and surface the socket as the connection.
		if err := sc.Send(p, fallbackHello); err != nil {
			sc.Close()
			return
		}
		if !l.ready.TryPut(&sockConn{c: sc}) {
			sc.Close()
		}
		return
	}
	// Verbs endpoint exchange: reply with our endpoint info and drop the
	// bootstrap socket; the endpoint itself arrives via ibAcceptLoop.
	_ = sc.Send(p, epInfoBytes)
	sc.Close()
}

func (l *ibListener) ibAcceptLoop(e exec.Env, rail int) {
	p := procOf(e)
	ibLn := l.ibLns[rail]
	muxLn := l.muxLns[rail]
	for {
		var ep verbsEP
		var err error
		if muxLn != nil {
			ep, err = muxLn.Accept(p)
		} else {
			ep, err = ibLn.Accept(p)
		}
		if err != nil {
			return
		}
		if !l.ready.TryPut(&ibConn{c: l.c, ep: ep, dev: ibLn.Device()}) {
			ep.Close()
		}
	}
}

func (l *ibListener) Accept(e exec.Env) (transport.Conn, error) {
	v, ok := l.ready.Get(e)
	if !ok {
		return nil, errListenerClosed
	}
	return v.(transport.Conn), nil
}

func (l *ibListener) Close() {
	l.sockLn.Close()
	for _, ibLn := range l.ibLns {
		ibLn.Close()
	}
	l.ready.Close()
}

func (l *ibListener) Addr() string { return l.sockLn.Addr() }

// ibConn adapts a verbs endpoint — dedicated or muxed — to transport.Conn
// (+ PooledSender).
type ibConn struct {
	c   *Cluster
	ep  verbsEP
	dev *ibverbs.Device
}

var _ transport.PooledSender = (*ibConn)(nil)
var _ transport.SizedSender = (*ibConn)(nil)

// SendSized stages the (small) real bytes through a registered buffer and
// bills the virtual size to the verbs transport.
func (c *ibConn) SendSized(e exec.Env, data []byte, size int) error {
	b := c.dev.RecvPool().Get(len(data))
	copy(b.Data, data)
	err := c.ep.SendSized(procOf(e), b, len(data), size)
	c.dev.RecvPool().Put(b)
	return err
}

// SendPooled transmits from a registered buffer with zero copies.
func (c *ibConn) SendPooled(e exec.Env, b *bufpool.Buffer, n int) error {
	return c.ep.Send(procOf(e), b, n)
}

// Send is the non-pooled fallback (bootstrap/control payloads): it stages
// data through a registered buffer, paying one copy — exactly the cost the
// pooled path avoids.
func (c *ibConn) Send(e exec.Env, data []byte) error {
	e.Work(c.c.Costs.Copy(len(data)))
	b := c.dev.RecvPool().Get(len(data))
	copy(b.Data, data)
	err := c.ep.Send(procOf(e), b, len(data))
	c.dev.RecvPool().Put(b)
	return err
}

func (c *ibConn) Recv(e exec.Env) ([]byte, func(), error) {
	return c.ep.Recv(procOf(e))
}

func (c *ibConn) WireTime(n int) time.Duration { return c.ep.WireTime(n) }

func (c *ibConn) Close()             { c.ep.Close() }
func (c *ibConn) RemoteAddr() string { return c.ep.RemoteAddr() }

// Sharded testbed assembly (DESIGN.md S22).
//
// ShardedCluster runs nodes on a sim.ShardedSim: nodes are partitioned into
// shard groups (contiguous ID blocks — topology-aware in the rack sense that
// adjacent IDs share a rack in the presets), each shard owns its members'
// CPU resources, event heap, metrics registry, and the state of any process
// spawned there. Cross-node traffic goes through netsim.ShardFabric, whose
// link latency is the kernel lookahead.
//
// Determinism contract for scenario code: keep a node's state on its owning
// shard, route all cross-node interaction through the fabric (or PostAt), use
// NodeRand streams instead of a global PRNG, write any given gauge from one
// node only, and never branch on the node→shard assignment. Under those
// rules, merged snapshots, traces, and replays are byte-identical for every
// shard count and every GOMAXPROCS setting.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"rpcoib/internal/exec"
	"rpcoib/internal/metrics"
	"rpcoib/internal/netsim"
	"rpcoib/internal/perfmodel"
	"rpcoib/internal/sim"
)

// AssignShards partitions nodes into contiguous blocks, one per shard: node i
// goes to shard i/ceil(nodes/shards). Contiguity keeps rack-mates (adjacent
// IDs in the paper presets) on the same shard, so intra-rack chatter stays
// shard-local.
func AssignShards(nodes, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	per := (nodes + shards - 1) / shards
	out := make([]int, nodes)
	for i := range out {
		out[i] = i / per
	}
	return out
}

// ShardedCluster is a running sharded testbed.
type ShardedCluster struct {
	Kernel *sim.ShardedSim
	Config Config

	assign []int // node -> shard
	cpus   []*sim.Resource
	seqs   []uint64 // per-node cross-shard message sequence, owned by the node's shard
	rands  []*rand.Rand
	regs   []*metrics.Registry // one per shard; merged commutatively at barriers
}

// NewSharded builds a sharded cluster from cfg with the given conservative
// lookahead (use the link latency of the fabric the scenario runs on; see
// NewShardFabric). cfg.Shards <= 0 means one shard.
func NewSharded(cfg Config, lookahead time.Duration) *ShardedCluster {
	if cfg.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	if cfg.CoresPerNode < 1 {
		cfg.CoresPerNode = 8
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}
	cfg.Shards = shards
	sc := &ShardedCluster{
		Kernel: sim.NewSharded(cfg.Seed, shards, lookahead),
		Config: cfg,
		assign: AssignShards(cfg.Nodes, shards),
		cpus:   make([]*sim.Resource, cfg.Nodes),
		seqs:   make([]uint64, cfg.Nodes),
		rands:  make([]*rand.Rand, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		sc.cpus[i] = sc.shardSim(i).NewResource(int64(cfg.CoresPerNode))
		sc.rands[i] = sim.SubRand(cfg.Seed, int64(i))
	}
	for i := 0; i < shards; i++ {
		sc.regs = append(sc.regs, metrics.New())
	}
	return sc
}

// Nodes returns the host count.
func (sc *ShardedCluster) Nodes() int { return sc.Config.Nodes }

// Shards returns the shard count.
func (sc *ShardedCluster) Shards() int { return sc.Kernel.Shards() }

// ShardOf returns the shard owning a node.
func (sc *ShardedCluster) ShardOf(node int) int { return sc.assign[node] }

func (sc *ShardedCluster) shardSim(node int) *sim.Sim {
	return sc.Kernel.Shard(sc.assign[node]).Sim()
}

// NodeRand returns node's deterministic PRNG stream. Streams are derived from
// the cluster seed per node (not per shard), so draws are invariant under
// shard re-assignment. Only legal from the owning shard's context.
func (sc *ShardedCluster) NodeRand(node int) *rand.Rand { return sc.rands[node] }

// Registry returns the metrics registry of node's owning shard. Instruments
// must use counters/histograms (or single-writer gauges) so the barrier merge
// is commutative. Only legal from the owning shard's context.
func (sc *ShardedCluster) Registry(node int) *metrics.Registry {
	return sc.regs[sc.assign[node]]
}

// Snapshot merges the per-shard registries into one cluster-wide snapshot
// stamped at. Counters and histogram buckets add and gauges are
// single-writer, so the merged result is independent of the shard layout.
// Only legal at a barrier (between RunUntil slices) or after the run.
func (sc *ShardedCluster) Snapshot(at time.Duration) metrics.Snapshot {
	snaps := make([]metrics.Snapshot, 0, len(sc.regs))
	for _, r := range sc.regs {
		snaps = append(snaps, r.Snapshot(at))
	}
	return metrics.Merge(snaps...)
}

// NewFabric builds a ShardFabric over this cluster for a link kind, checking
// that the link latency covers the kernel lookahead (a message may not arrive
// earlier than one lookahead after send).
func (sc *ShardedCluster) NewFabric(kind perfmodel.LinkKind) *netsim.ShardFabric {
	params := perfmodel.Link(kind)
	if params.Latency < sc.Kernel.Lookahead() {
		panic(fmt.Sprintf("cluster: %v link latency %v is below the kernel lookahead %v",
			kind, params.Latency, sc.Kernel.Lookahead()))
	}
	return netsim.NewShardFabric(sc, params, sc.Config.Nodes)
}

// PostAt implements netsim.ShardKernel: deliver fn to dstNode's shard at
// virtual time at, merged in deterministic (at, srcNode, srcSeq) order.
func (sc *ShardedCluster) PostAt(dstNode int, at time.Duration, srcNode int, srcSeq uint64, fn func()) {
	sc.Kernel.Post(sc.assign[dstNode], at, srcNode, srcSeq, fn)
}

// LocalAt implements netsim.ShardKernel: schedule fn on node's own shard.
// Only legal from the owning shard's context (or before the run starts).
func (sc *ShardedCluster) LocalAt(node int, at time.Duration, fn func()) {
	sc.shardSim(node).At(at, fn)
}

// NowAt implements netsim.ShardKernel: node's shard-local virtual time.
func (sc *ShardedCluster) NowAt(node int) time.Duration { return sc.shardSim(node).Now() }

// NextNodeSeq implements netsim.ShardKernel: the next deterministic sequence
// number for node's outgoing cross-shard messages. Owned by the node's shard,
// so no synchronization is needed and the numbering is identical across
// layouts.
func (sc *ShardedCluster) NextNodeSeq(node int) uint64 {
	sc.seqs[node]++
	return sc.seqs[node]
}

// SpawnOn starts fn as a process on node: it runs on the node's owning shard
// and its Work calls contend for the node's cores. Legal before the run or
// from the owning shard's context.
func (sc *ShardedCluster) SpawnOn(node int, name string, fn func(exec.Env)) {
	sc.shardSim(node).Spawn(name, func(p *sim.Proc) {
		fn(&ShardEnv{c: sc, node: node, p: p})
	})
}

// Run drives the sharded simulation to completion.
func (sc *ShardedCluster) Run() time.Duration { return sc.Kernel.Run() }

// RunUntil drives the simulation up to a horizon; repeated calls with growing
// horizons are the barrier-safe instants to stream snapshots at.
func (sc *ShardedCluster) RunUntil(d time.Duration) time.Duration { return sc.Kernel.RunUntil(d) }

// Close releases the kernel's worker goroutines.
func (sc *ShardedCluster) Close() { sc.Kernel.Close() }

// ShardEnv is the exec.Env for processes on a sharded cluster: bound to a
// node, scheduling on the node's owning shard, drawing randomness from the
// node's stream.
type ShardEnv struct {
	c    *ShardedCluster
	node int
	p    *sim.Proc
}

// Proc exposes the underlying sim process for queue glue.
func (e *ShardEnv) Proc() *sim.Proc { return e.p }

// NodeID implements exec.ShardInfo.
func (e *ShardEnv) NodeID() int { return e.node }

// ShardID implements exec.ShardInfo.
func (e *ShardEnv) ShardID() int { return e.c.assign[e.node] }

// Cluster returns the owning sharded cluster.
func (e *ShardEnv) Cluster() *ShardedCluster { return e.c }

// Now implements exec.Env.
func (e *ShardEnv) Now() time.Duration { return e.p.Now() }

// Sleep implements exec.Env.
func (e *ShardEnv) Sleep(d time.Duration) { e.p.Sleep(d) }

// Work implements exec.Env: occupy one of the node's cores for d.
func (e *ShardEnv) Work(d time.Duration) {
	if d > 0 {
		e.c.cpus[e.node].Use(e.p, d)
	}
}

// Spawn implements exec.Env: the child runs on the same node (hence shard).
func (e *ShardEnv) Spawn(name string, fn func(exec.Env)) {
	e.c.SpawnOn(e.node, name, fn)
}

// NewQueue implements exec.Env: a queue on the node's shard. Queues must only
// be shared between processes of the same shard — cross-shard communication
// goes through the fabric.
func (e *ShardEnv) NewQueue(capacity int) exec.Queue {
	return simQueue{q: e.c.shardSim(e.node).NewQueue(capacity)}
}

// Rand implements exec.Env: the node's deterministic stream.
func (e *ShardEnv) Rand() *rand.Rand { return e.c.rands[e.node] }

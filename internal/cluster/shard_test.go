package cluster

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"rpcoib/internal/exec"
	"rpcoib/internal/perfmodel"
)

// Metric names used by the sharded-cluster test scenario.
const (
	testShardCallsMetric = "test_shard_calls_total"
	testShardBytesMetric = "test_shard_bytes_total"
	testShardLatMetric   = "test_shard_latency_ns"
)

// runShardClusterScenario runs a request/response scenario across nodes on
// the sharded stack: every node's client process sends fixed-size requests
// over the IB fabric to a server process on node 0, which does simulated CPU
// work and replies. Metrics land in the per-shard registries; the merged
// snapshot must be byte-identical for every layout.
func runShardClusterScenario(t *testing.T, shards, procs int) ([]byte, time.Duration) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	cfg := ClusterA(8)
	cfg.Shards = shards
	look := perfmodel.Link(perfmodel.NativeIB).Latency
	sc := NewSharded(cfg, look)
	defer sc.Close()
	fab := sc.NewFabric(perfmodel.NativeIB)

	const reqSize = 1024
	// Server: node 0 handles requests in kernel callbacks (the fabric deliver
	// runs on node 0's shard), replying after a per-request service jitter.
	serve := func(src int, respond func()) {
		lat := time.Duration(sc.NodeRand(0).Intn(5000)) * time.Nanosecond
		sc.LocalAt(0, sc.NowAt(0)+lat, func() {
			fab.Send(0, src, reqSize/4, respond)
		})
	}

	for n := 1; n < sc.Nodes(); n++ {
		node := n
		sc.SpawnOn(node, "client", func(e exec.Env) {
			reg := sc.Registry(node)
			calls := reg.Counter(testShardCallsMetric)
			bytes := reg.Counter(testShardBytesMetric)
			lat := reg.Histogram(testShardLatMetric, nil)
			for i := 0; i < 20; i++ {
				start := e.Now()
				done := e.NewQueue(1)
				sc.LocalAt(node, e.Now(), func() {
					fab.Send(node, 0, reqSize, func() {
						serve(node, func() {
							done.TryPut(struct{}{})
						})
					})
				})
				done.Get(e)
				calls.Add(1)
				bytes.Add(reqSize)
				lat.Observe(int64(e.Now() - start))
				e.Sleep(time.Duration(e.Rand().Intn(20000)) * time.Nanosecond)
			}
		})
	}
	end := sc.Run()
	snap := sc.Snapshot(end)
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return b, end
}

func TestShardedClusterDeterministicAcrossLayouts(t *testing.T) {
	ref, refEnd := runShardClusterScenario(t, 1, 1)
	for _, shards := range []int{2, 4, 8} {
		for _, procs := range []int{1, 8} {
			got, end := runShardClusterScenario(t, shards, procs)
			if end != refEnd {
				t.Fatalf("shards=%d procs=%d: end time %v, want %v", shards, procs, end, refEnd)
			}
			if string(got) != string(ref) {
				t.Fatalf("shards=%d procs=%d: merged snapshot diverged\n got %s\nwant %s", shards, procs, got, ref)
			}
		}
	}
}

func TestAssignShards(t *testing.T) {
	got := AssignShards(10, 4)
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AssignShards(10,4) = %v, want %v", got, want)
		}
	}
	if a := AssignShards(3, 8); a[0] != 0 || a[1] != 1 || a[2] != 2 {
		t.Fatalf("AssignShards(3,8) = %v, want one node per shard", a)
	}
}

func TestShardFabricLoopbackStaysLocal(t *testing.T) {
	cfg := ClusterA(4)
	cfg.Shards = 2
	sc := NewSharded(cfg, perfmodel.Link(perfmodel.NativeIB).Latency)
	defer sc.Close()
	fab := sc.NewFabric(perfmodel.NativeIB)
	delivered := false
	sc.LocalAt(3, 0, func() {
		fab.Send(3, 3, 64, func() { delivered = true })
	})
	sc.Run()
	if !delivered {
		t.Fatal("loopback message not delivered")
	}
	if sc.Kernel.MergedMessages() != 0 {
		t.Fatalf("loopback crossed a shard boundary: %d merged messages", sc.Kernel.MergedMessages())
	}
	if fab.Delivered() != 1 || fab.DeliveredBytes() != 64 {
		t.Fatalf("delivered=%d bytes=%d, want 1/64", fab.Delivered(), fab.DeliveredBytes())
	}
}

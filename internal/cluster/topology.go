package cluster

// Topology describes the physical layout of the cluster: how nodes are
// grouped into racks and how many independent IB rails each node's HCA(s)
// expose. The paper's testbeds motivate the presets: Cluster A is a classic
// single-rail QDR fabric, while multi-rail layouts model hosts with dual-port
// HCAs (or two HCAs) cabled to independent switches — the configuration
// RDMAvisor-style rail virtualization targets. Every rail is a full
// netsim.Fabric with its own NICs, link state, and verbs network, so a rail
// can be lost, flapped, or degraded independently of its siblings.
type Topology struct {
	// Racks is the rack count; node n lives in rack n % Racks. Rack
	// membership drives rail affinity: traffic between same-rack nodes is
	// pinned to the rack's home rail, keeping rack-local flows from
	// contending with cross-rack ones. <= 0 means 1.
	Racks int
	// IBRails is the number of independent native-IB rails per node. <= 0
	// means 1 — the historical single-fabric behavior, byte-identical with
	// pre-topology clusters.
	IBRails int
}

func (t Topology) withDefaults() Topology {
	if t.Racks <= 0 {
		t.Racks = 1
	}
	if t.IBRails <= 0 {
		t.IBRails = 1
	}
	return t
}

// SingleRailTopology is the paper's Cluster A layout: one rack-equivalent
// failure domain, one QDR rail. It is the default and preserves the exact
// behavior of pre-multi-rail clusters.
func SingleRailTopology() Topology { return Topology{Racks: 1, IBRails: 1} }

// DualRailTopology models Cluster B hosts with dual-port HCAs cabled to two
// independent switches: two racks, two rails, rack-affine routing.
func DualRailTopology() Topology { return Topology{Racks: 2, IBRails: 2} }

// QuadRailTopology is the stress layout the chaos matrix sweeps: four racks
// over four rails, so every rail carries live traffic that a rail outage
// must shift.
func QuadRailTopology() Topology { return Topology{Racks: 4, IBRails: 4} }

// RackOf returns the rack housing node.
func (t Topology) RackOf(node int) int {
	t = t.withDefaults()
	if node < 0 {
		return 0
	}
	return node % t.Racks
}

// PreferredRail returns the affinity rail for traffic from src to dst:
// same-rack flows ride the rack's home rail; cross-rack flows are spread
// deterministically by the rack pair. The rail dialer starts here and load-
// balances away only when the preferred rail is measurably busier or down.
func (t Topology) PreferredRail(src, dst int) int {
	t = t.withDefaults()
	rs, rd := t.RackOf(src), t.RackOf(dst)
	if rs == rd {
		return rs % t.IBRails
	}
	return (rs + rd) % t.IBRails
}

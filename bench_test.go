package rpcoib

// One benchmark per table/figure of the paper's evaluation, plus the
// ablations called out in DESIGN.md. Each benchmark runs a scaled-down
// version of the experiment (so `go test -bench=.` completes in minutes) and
// reports the headline quantity via b.ReportMetric; the cmd/ binaries run
// the full paper-scale versions and print the complete tables recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"rpcoib/internal/bench"
	"rpcoib/internal/exec"
	"rpcoib/internal/transport"
	"rpcoib/internal/wire"
	"rpcoib/internal/ycsb"
)

// BenchmarkTable1Profile regenerates Table I (RPC invocation profiling in a
// Sort job; scaled to 1 GB on 9 nodes).
func BenchmarkTable1Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Table1Profile(nil, 1)
		rows := res.Tracer.SendRows()
		if len(rows) < 10 {
			b.Fatalf("only %d profiled call kinds", len(rows))
		}
		b.ReportMetric(float64(len(rows)), "callkinds")
		b.ReportMetric(res.SortTime.Seconds(), "sort-s")
	}
}

// BenchmarkFig1AllocRatio regenerates Figure 1 (buffer-allocation share of
// call receive time) at the 2 MB point.
func BenchmarkFig1AllocRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig1AllocRatio(nil, []int{2 << 20}, 10)
		b.ReportMetric(rows[0].IPoIB, "ratio-ipoib")
		b.ReportMetric(rows[0].OneGigE, "ratio-1gige")
	}
}

// BenchmarkFig3SizeLocality regenerates Figure 3 (message size locality)
// from a profiled Sort run.
func BenchmarkFig3SizeLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Table1Profile(nil, 1)
		series := bench.Fig3SizeLocality(nil, res)
		for _, s := range series {
			b.ReportMetric(s.Locality, "locality-"+s.Name)
		}
	}
}

// BenchmarkFig5aLatency regenerates Figure 5(a) and reports the 1-byte
// latencies (microseconds).
func BenchmarkFig5aLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig5aLatency(nil, []int{1, 4096}, 50)
		b.ReportMetric(float64(rows[0].RPCoIB.Microseconds()), "us-rpcoib-1B")
		b.ReportMetric(float64(rows[0].IPoIB.Microseconds()), "us-ipoib-1B")
		b.ReportMetric(float64(rows[1].RPCoIB.Microseconds()), "us-rpcoib-4KB")
	}
}

// BenchmarkFig5bThroughput regenerates Figure 5(b) at the 64-client peak.
func BenchmarkFig5bThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig5bThroughput(nil, []int{64}, 100)
		b.ReportMetric(rows[0].RPCoIB, "kops-rpcoib")
		b.ReportMetric(rows[0].IPoIB, "kops-ipoib")
		b.ReportMetric(rows[0].TenGigE, "kops-10gige")
	}
}

// BenchmarkFig6aSort regenerates Figure 6(a) scaled down (8 slaves, 4 GB).
func BenchmarkFig6aSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := bench.Fig6aSort(nil, 8, []int{4})
		for _, p := range points {
			b.ReportMetric(p.Sort.Seconds(), "sort-s-"+p.Mode)
			b.ReportMetric(p.RandomWriter.Seconds(), "rw-s-"+p.Mode)
		}
	}
}

// BenchmarkFig6bCloudBurst regenerates Figure 6(b) (full shape: 9 nodes,
// 240/48 + 24/24 tasks).
func BenchmarkFig6bCloudBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := bench.Fig6bCloudBurst(nil)
		for _, p := range points {
			b.ReportMetric(p.Total.Seconds(), "total-s-"+p.Mode)
		}
	}
}

// BenchmarkFig7HDFSWrite regenerates Figure 7 scaled down (8 DataNodes,
// 1 GB files, all seven configurations).
func BenchmarkFig7HDFSWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := bench.Fig7HDFSWrite(nil, 8, []int{1})
		for _, p := range points {
			b.ReportMetric(p.Time.Seconds(), "s-"+p.Config)
		}
	}
}

func benchFig8(b *testing.B, mix ycsb.Mix, name string) {
	for i := 0; i < b.N; i++ {
		points := bench.Fig8HBase(nil, mix, name, []int{50_000}, 32_000)
		for _, p := range points {
			b.ReportMetric(p.Kops, "kops-"+p.Config)
		}
	}
}

// BenchmarkFig8aGet regenerates Figure 8(a): 100% Get.
func BenchmarkFig8aGet(b *testing.B) { benchFig8(b, ycsb.WorkloadGet, "100%Get") }

// BenchmarkFig8bPut regenerates Figure 8(b): 100% Put.
func BenchmarkFig8bPut(b *testing.B) { benchFig8(b, ycsb.WorkloadPut, "100%Put") }

// BenchmarkFig8cMix regenerates Figure 8(c): 50% Get / 50% Put.
func BenchmarkFig8cMix(b *testing.B) { benchFig8(b, ycsb.WorkloadMix, "50-50") }

// BenchmarkAblationPoolPolicy isolates the buffer-management contribution:
// the RPCoIB transport under each pool policy.
func BenchmarkAblationPoolPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationPoolPolicy(nil, 512, 200)
		for _, r := range rows {
			b.ReportMetric(float64(r.Latency.Microseconds()), "us-"+r.Policy.String())
		}
	}
}

// BenchmarkAblationRDMAThreshold sweeps the eager/RDMA crossover at 64 KB.
func BenchmarkAblationRDMAThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationRDMAThreshold(nil, 64<<10, nil, 50)
		for _, r := range rows {
			b.ReportMetric(float64(r.Latency.Microseconds()), fmt.Sprintf("us-thresh-%dK", r.Threshold>>10))
		}
	}
}

// BenchmarkRealModeAllocs measures real Go allocations per RPC over actual
// TCP: the baseline per-call DataOutputBuffer/receive-buffer churn versus
// the pooled RPCoIB serialization path. This is the paper's memory argument
// observable without any simulation.
func BenchmarkRealModeAllocs(b *testing.B) {
	for _, mode := range []Mode{ModeBaseline, ModeRPCoIB} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			env := exec.NewRealEnv(1)
			nw := transport.NewTCPNetwork("")
			srv := NewServer(nw, Options{Mode: mode})
			srv.Register("bench.Proto", "echo",
				func() wire.Writable { return &wire.BytesWritable{} },
				func(e exec.Env, p wire.Writable) (wire.Writable, error) { return p, nil })
			if err := srv.Start(env, 0); err != nil {
				b.Fatal(err)
			}
			defer srv.Stop()
			client := NewClient(nw, Options{Mode: mode})
			defer client.Close()
			param := &BytesWritable{Value: make([]byte, 512)}
			var reply BytesWritable
			// Warm up connection and pool history.
			if err := client.Call(env, srv.Addr(), "bench.Proto", "echo", param, &reply); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Call(env, srv.Addr(), "bench.Proto", "echo", param, &reply); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSerializationPath compares the two serialization paths directly
// (no network): Algorithm-1 DataOutputBuffer versus pooled RDMAOutputStream.
func BenchmarkSerializationPath(b *testing.B) {
	payload := &BytesWritable{Value: make([]byte, 600)}
	b.Run("baseline-algorithm1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := wire.NewDataOutputBuffer()
			out := wire.NewDataOutput(d)
			payload.Write(out)
		}
	})
	b.Run("rpcoib-pooled", func(b *testing.B) {
		pool := NewBufferPool(PolicyHistory)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewRDMAOutputStreamForBench(pool, "k")
			out := wire.NewDataOutput(s)
			payload.Write(out)
			s.Release()
		}
	})
}
